(** Transformation traces — the paper's "concern spaces".

    Each applied concrete transformation contributes one entry recording the
    model elements it created or modified. Traces drive:
    - the colored demarcation of concern spaces (Section 3),
    - the precedence of generated aspects (Section 2: "the order in which
      specialized aspects will be applied at code level is dictated by
      the order in which the model transformations were applied"),
    - repository history. *)

(** One applied transformation. *)
type entry = {
  seq : int;  (** 1-based application order *)
  transformation : string;  (** CMT name *)
  concern : string;  (** concern key, e.g. ["distribution"] *)
  diff : Mof.Diff.t;
}

type t
(** A trace: entries in application order. *)

val empty : t
val entries : t -> entry list
val length : t -> int

val record : transformation:string -> concern:string -> Mof.Diff.t -> t -> t
(** Appends an entry with the next sequence number. When a telemetry sink
    is installed, also emits a structured [trace.record] event carrying the
    same data — the trace and the event stream are one path. *)

val diff_args : Mof.Diff.t -> (string * Obs.Event.value) list
(** The shared event-argument rendering of a diff (added/removed/modified
    counts), reused by {!Report} so every telemetry consumer sees the same
    shape. *)

val drop_last : t -> t
(** Removes the most recent entry (identity on the empty trace) — the trace
    side of the repository's Undo facility. *)

val concern_space : t -> concern:string -> Mof.Id.Set.t
(** All element ids created or modified by transformations of the given
    concern. *)

val concerns_applied : t -> string list
(** Concern keys in first-application order, without duplicates — this list
    is the aspect precedence order. *)

val introduced_by : t -> Mof.Id.t -> string option
(** The concern whose transformation *created* the element, if any; an
    element created by one concern and modified by another keeps its
    creator. *)

val pp : Format.formatter -> t -> unit
