(* The shared execution-layer substrate: an ablation switch that routes
   the three compiled paths (OCL bytecode, pointcut deciders, interpreter
   method bodies) back to their tree-walking baselines, plus the small
   pieces every compiler needs — an operand stack, a deduplicating
   constant pool, a compile-time slot allocator, and an always-on opcode
   profiler whose totals survive domain pools.

   The flag is domain-local for the same reason the OCL caches are: a
   pool worker toggling the ablation for a differential run must not
   flip the production path of its siblings. Each domain starts from the
   process default, which the CLI's [--no-vm] sets before any worker
   domain spawns. *)

let default_enabled = Atomic.make true
let enabled_key = Domain.DLS.new_key (fun () -> ref (Atomic.get default_enabled))
let enabled () = !(Domain.DLS.get enabled_key)
let set_enabled b = Domain.DLS.get enabled_key := b

(* Sets the default for domains spawned from now on, and the calling
   domain's own flag. Domains already running keep theirs. *)
let set_default b =
  Atomic.set default_enabled b;
  set_enabled b

let with_vm b f =
  let flag = Domain.DLS.get enabled_key in
  let prev = !flag in
  flag := b;
  Fun.protect ~finally:(fun () -> flag := prev) f

(* ---- operand stack ------------------------------------------------------ *)

(* A growable array the executors share across nested blocks: pushing is
   a bounds check and two stores, no per-value allocation. [dummy] fills
   popped cells so the stack never pins dead values for the GC. *)
module Stack = struct
  type 'a t = { mutable buf : 'a array; mutable len : int; dummy : 'a }

  let create ~dummy n = { buf = Array.make (max n 1) dummy; len = 0; dummy }

  let push t v =
    let cap = Array.length t.buf in
    if t.len = cap then begin
      let buf = Array.make (2 * cap) t.dummy in
      Array.blit t.buf 0 buf 0 cap;
      t.buf <- buf
    end;
    Array.unsafe_set t.buf t.len v;
    t.len <- t.len + 1

  let pop t =
    let i = t.len - 1 in
    if i < 0 then invalid_arg "Vm.Stack.pop: empty";
    let v = Array.unsafe_get t.buf i in
    Array.unsafe_set t.buf i t.dummy;
    t.len <- i;
    v

  let depth t = t.len
end

(* ---- constant pool ------------------------------------------------------ *)

(* Structural dedup so compilation is a pure function of the AST: two
   compiles of the same tree intern constants in the same discovery
   order and produce identical pools (the determinism property locked
   by the QCheck test). *)
module Pool = struct
  type 'a t = { mutable rev : 'a list; mutable n : int; index : ('a, int) Hashtbl.t }

  let create () = { rev = []; n = 0; index = Hashtbl.create 16 }

  let intern t v =
    match Hashtbl.find_opt t.index v with
    | Some i -> i
    | None ->
        let i = t.n in
        t.rev <- v :: t.rev;
        t.n <- i + 1;
        Hashtbl.add t.index v i;
        i

  let to_array t = Array.of_list (List.rev t.rev)
end

(* ---- compile-time scopes ------------------------------------------------ *)

(* Slot allocation for binders: every binder in a program gets a fresh
   slot (never reused, so shadowing is just innermost-first lookup), and
   [nslots] sizes the one flat frame the executor allocates per run. *)
module Scope = struct
  type t = { mutable next : int; mutable stack : (string * int) list }

  let create () = { next = 0; stack = [] }

  let bind t name =
    let slot = t.next in
    t.next <- slot + 1;
    t.stack <- (name, slot) :: t.stack;
    slot

  let unbind t n =
    let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
    t.stack <- drop n t.stack

  let lookup t name = List.assoc_opt name t.stack
  let nslots t = t.next
end

(* ---- opcode profiler ---------------------------------------------------- *)

(* Always-on per-opcode counters cheap enough for the dispatch loop: one
   plain int-array shard per domain, registered in a global list at
   first touch so [totals] can sum across a Par.Pool's workers after the
   fact. [publish] flushes the deltas since the last publish into the
   Obs metric registry as vm.exec.<prefix>.<op> counters — called from
   the stats/exposition paths, never from the hot loop. *)
module Profile = struct
  type t = {
    prefix : string;
    names : string array;
    lock : Mutex.t;
    shards : int array list ref;
    key : int array Domain.DLS.key;
    published : int array; (* cumulative totals already flushed to Obs *)
  }

  let registry : t list ref = ref []
  let registry_lock = Mutex.create ()

  let create ~prefix names =
    let names = Array.of_list names in
    let lock = Mutex.create () in
    let shards = ref [] in
    let key =
      Domain.DLS.new_key (fun () ->
          let shard = Array.make (Array.length names) 0 in
          Mutex.lock lock;
          shards := shard :: !shards;
          Mutex.unlock lock;
          shard)
    in
    let t =
      { prefix; names; lock; shards; key; published = Array.make (Array.length names) 0 }
    in
    Mutex.lock registry_lock;
    registry := t :: !registry;
    Mutex.unlock registry_lock;
    t

  (* The dispatch loop calls [shard] once per run and hits the returned
     array directly, so per-instruction cost is one increment. *)
  let shard t = Domain.DLS.get t.key

  let hit shard i = Array.unsafe_set shard i (Array.unsafe_get shard i + 1)

  let totals t =
    Mutex.lock t.lock;
    let shards = !(t.shards) in
    Mutex.unlock t.lock;
    let acc = Array.make (Array.length t.names) 0 in
    List.iter
      (fun s -> Array.iteri (fun i v -> acc.(i) <- acc.(i) + v) s)
      shards;
    acc

  let names t = t.names
  let prefix t = t.prefix

  (* (name, total) pairs, the shape the coverage assertion consumes *)
  let counts t =
    let tot = totals t in
    Array.to_list (Array.mapi (fun i n -> (n, tot.(i))) t.names)

  let publish t =
    if Obs.Metric.enabled () then begin
      let tot = totals t in
      Mutex.lock t.lock;
      Array.iteri
        (fun i total ->
          let delta = total - t.published.(i) in
          if delta > 0 then begin
            t.published.(i) <- total;
            Obs.incr ~by:(float_of_int delta)
              (Printf.sprintf "vm.exec.%s.%s" t.prefix t.names.(i))
              []
          end)
        tot;
      Mutex.unlock t.lock
    end

  let all () =
    Mutex.lock registry_lock;
    let l = !registry in
    Mutex.unlock registry_lock;
    List.rev l

  let publish_all () = List.iter publish (all ())
end
