(* The joinpoint index: per-class shadow tables keyed the way pointcuts
   probe them (execution shadows by method name, call shadows by callee
   name, field-set shadows by field name), mirroring the PR-1 model
   indexes and the PR-4 OCL query planner. Candidate sets are upper
   bounds — [Matcher.matches] always has the final word — so a probe can
   only narrow, never change, the match set. *)

module Sm = Map.Make (String)

(* a keyed shadow table: [shadows] in program order, buckets too *)
type part = {
  shadows : Joinpoint.shadow list;
  by_key : Joinpoint.shadow list Sm.t;
}

type exec_index = part
type stmt_index = {
  calls : part;
  sets : part;
  all_stmts : Joinpoint.shadow list;  (* calls and sets, program order *)
}

type entry = {
  exec : exec_index;
  stmts : stmt_index;
  all : Joinpoint.shadow list;  (* all three kinds, program order *)
}

type t = (Code.Jdecl.class_ * entry) list  (* program order *)

let part_of key_of shadows =
  let by_key =
    List.fold_left
      (fun m s ->
        let k = key_of s in
        Sm.update k
          (function Some l -> Some (s :: l) | None -> Some [ s ])
          m)
      Sm.empty (List.rev shadows)
  in
  { shadows; by_key }

let exec_index_of_class (c : Code.Jdecl.class_) =
  let shadows =
    List.filter_map
      (fun (m : Code.Jdecl.method_) ->
        match m.Code.Jdecl.body with
        | Some _ ->
            Some
              (Joinpoint.Sh_execution
                 {
                   class_name = c.Code.Jdecl.class_name;
                   method_name = m.Code.Jdecl.method_name;
                 })
        | None -> None)
      c.Code.Jdecl.methods
  in
  part_of
    (function
      | Joinpoint.Sh_execution { method_name; _ } -> method_name
      | _ -> assert false)
    shadows

let stmt_index_of_shadows shadows =
  let stmts =
    List.filter
      (function Joinpoint.Sh_execution _ -> false | _ -> true)
      shadows
  in
  let calls =
    List.filter (function Joinpoint.Sh_call _ -> true | _ -> false) stmts
  in
  let sets =
    List.filter (function Joinpoint.Sh_field_set _ -> true | _ -> false) stmts
  in
  {
    calls =
      part_of
        (function
          | Joinpoint.Sh_call { method_name; _ } -> method_name
          | _ -> assert false)
        calls;
    sets =
      part_of
        (function
          | Joinpoint.Sh_field_set { field_name; _ } -> field_name
          | _ -> assert false)
        sets;
    all_stmts = stmts;
  }

let stmt_index_of_class c =
  stmt_index_of_shadows (Joinpoint.shadows_of_class c)

let entry_of_class c =
  let all = Joinpoint.shadows_of_class c in
  {
    exec = exec_index_of_class c;
    stmts = stmt_index_of_shadows all;
    all;
  }

let build program =
  Obs.span ~cat:"weaver" "weave.index.build" @@ fun () ->
  List.map (fun c -> (c, entry_of_class c)) (Code.Junit.classes program)

let entries t = t
let all_shadows t = List.concat_map (fun (_, e) -> e.all) t

(* --- candidate resolution -------------------------------------------- *)

let probed () = Obs.incr "weave.index.probe" []
let scanned () = Obs.incr "weave.index.scan" []
let literal p = not (Aspects.Pattern.is_wildcard p)
let bucket part key =
  match Sm.find_opt key part.by_key with Some l -> l | None -> []

(* For [And], probe through the cheaper side: a conjunct's candidate set is
   a sound upper bound for the conjunction. Rank 3 = provably empty in this
   domain, 2 = keyed probe, 1 = kind scan, 0 = class-local scan. *)
let rec exec_rank = function
  | Aspects.Pointcut.Call _ | Aspects.Pointcut.Set_field _ -> 3
  | Aspects.Pointcut.Execution mp ->
      if literal mp.Aspects.Pattern.mp_method then 2 else 1
  | Aspects.Pointcut.And (a, b) -> max (exec_rank a) (exec_rank b)
  | Aspects.Pointcut.Within _ | Aspects.Pointcut.Or _ | Aspects.Pointcut.Not _
    ->
      0

let rec exec_candidates (ix : exec_index) pc =
  match pc with
  | Aspects.Pointcut.Call _ | Aspects.Pointcut.Set_field _ ->
      probed ();
      []
  | Aspects.Pointcut.Execution mp when literal mp.Aspects.Pattern.mp_method ->
      probed ();
      bucket ix mp.Aspects.Pattern.mp_method
  | Aspects.Pointcut.And (a, b) ->
      exec_candidates ix (if exec_rank a >= exec_rank b then a else b)
  | Aspects.Pointcut.Execution _ | Aspects.Pointcut.Within _
  | Aspects.Pointcut.Or _ | Aspects.Pointcut.Not _ ->
      scanned ();
      ix.shadows

let rec stmt_rank = function
  | Aspects.Pointcut.Execution _ -> 3
  | Aspects.Pointcut.Call mp ->
      if literal mp.Aspects.Pattern.mp_method then 2 else 1
  | Aspects.Pointcut.Set_field (_, fp) -> if literal fp then 2 else 1
  | Aspects.Pointcut.And (a, b) -> max (stmt_rank a) (stmt_rank b)
  | Aspects.Pointcut.Within _ | Aspects.Pointcut.Or _ | Aspects.Pointcut.Not _
    ->
      0

let rec stmt_candidates (ix : stmt_index) pc =
  match pc with
  | Aspects.Pointcut.Execution _ ->
      probed ();
      []
  | Aspects.Pointcut.Call mp when literal mp.Aspects.Pattern.mp_method ->
      probed ();
      bucket ix.calls mp.Aspects.Pattern.mp_method
  | Aspects.Pointcut.Call _ ->
      scanned ();
      ix.calls.shadows
  | Aspects.Pointcut.Set_field (_, fp) when literal fp ->
      probed ();
      bucket ix.sets fp
  | Aspects.Pointcut.Set_field _ ->
      scanned ();
      ix.sets.shadows
  | Aspects.Pointcut.And (a, b) ->
      stmt_candidates ix (if stmt_rank a >= stmt_rank b then a else b)
  | Aspects.Pointcut.Within _ | Aspects.Pointcut.Or _ | Aspects.Pointcut.Not _
    ->
      scanned ();
      ix.all_stmts

let exec_matching ix pc =
  List.filter (Matcher.matches pc) (exec_candidates ix pc)

let stmt_matching ix pc =
  List.filter (Matcher.matches pc) (stmt_candidates ix pc)

let exec_touches ix pc =
  List.exists (Matcher.matches pc) (exec_candidates ix pc)

let stmt_touches ix pc =
  List.exists (Matcher.matches pc) (stmt_candidates ix pc)

let matching_entry e pc = exec_matching e.exec pc @ stmt_matching e.stmts pc
let matching t pc = List.concat_map (fun (_, e) -> matching_entry e pc) t
