(** The joinpoint index: probe-not-scan pointcut resolution.

    Shadows of each class are tabulated the way pointcuts probe them —
    execution shadows by method name, call shadows by callee name,
    field-set shadows by field name — mirroring the model-level indexes of
    {!Mof.Model} and the OCL query planner. Candidate sets are sound upper
    bounds of the match set ({!Matcher.matches} always filters), split by
    shadow domain:

    - the {e execution} domain answers "which execution shadows might this
      pointcut match" — what execution advice needs;
    - the {e statement} domain answers the same for call/set shadows —
      what statement advice needs.

    The split matters to the weaver: advice weaving rewrites statements
    (invalidating the statement tables) but never adds or removes methods,
    so the execution table of a class stays valid across the whole advice
    chain; only inter-type declarations invalidate it.

    Counters: [weave.index.probe] counts keyed (or provably-empty) candidate
    resolutions, [weave.index.scan] the fallbacks that filter a class-local
    shadow list. *)

type exec_index
(** Execution shadows of one class, keyed by method name. *)

type stmt_index
(** Call/set shadows of one class, keyed by callee / field name. *)

type entry = {
  exec : exec_index;
  stmts : stmt_index;
  all : Joinpoint.shadow list;  (** all three kinds, program order *)
}

type t
(** A whole-program index: one {!entry} per class, program order. *)

val exec_index_of_class : Code.Jdecl.class_ -> exec_index
val stmt_index_of_class : Code.Jdecl.class_ -> stmt_index
val entry_of_class : Code.Jdecl.class_ -> entry

val build : Code.Junit.program -> t
val entries : t -> (Code.Jdecl.class_ * entry) list
val all_shadows : t -> Joinpoint.shadow list

val exec_candidates : exec_index -> Aspects.Pointcut.t -> Joinpoint.shadow list
(** Sound upper bound of the execution shadows the pointcut matches in this
    class: a keyed probe when the pointcut (or a conjunct of it) names a
    literal method, empty when the pointcut is of the wrong kind, a
    class-local scan otherwise. *)

val stmt_candidates : stmt_index -> Aspects.Pointcut.t -> Joinpoint.shadow list

val exec_matching : exec_index -> Aspects.Pointcut.t -> Joinpoint.shadow list
(** [exec_candidates] filtered by {!Matcher.matches} — exactly the
    execution shadows of the class the pointcut matches, program order. *)

val stmt_matching : stmt_index -> Aspects.Pointcut.t -> Joinpoint.shadow list

val exec_touches : exec_index -> Aspects.Pointcut.t -> bool
val stmt_touches : stmt_index -> Aspects.Pointcut.t -> bool

val matching_entry : entry -> Aspects.Pointcut.t -> Joinpoint.shadow list
(** Matches across both domains (execution shadows first, then
    statement shadows). *)

val matching : t -> Aspects.Pointcut.t -> Joinpoint.shadow list
(** Program-wide index-resolved matching, class by class. *)
