(* Critical-pair-style static interference analysis.

   Two aspects interfere when their weave order is observable in the woven
   program. The analysis works per aspect pair: it computes where each
   aspect's advice applies (resolved through the joinpoint index and gated
   exactly like the weaver), classifies advice effects, and searches for a
   critical overlap — a shared shadow with non-commuting advice, statement
   wrapping colliding in one method, shadows one aspect's woven bodies or
   inter-type members introduce that the other may match, or declarations
   that can change receiver resolution. Every rule is conservative: a pair
   is reported independent only when no rule fires, and the fuzz harness
   verifies that reported-independent pairs really commute. *)

type effect_kind =
  | Wrap
  | Insert_before
  | Insert_after
  | Field_touch

let effect_to_string = function
  | Wrap -> "wrap"
  | Insert_before -> "insert-before"
  | Insert_after -> "insert-after"
  | Field_touch -> "field-touch"

type advising = {
  aspect_name : string;
  concern : string;
  advice_name : string;
  time : Aspects.Advice.time;
  precedence : int;
  effect : effect_kind;
}

type entry = {
  at : Joinpoint.shadow;
  advisers : advising list;
  shared : bool;
}

type verdict =
  | Independent
  | Conflicting of {
      witness : Joinpoint.shadow option;
      reason : string;
    }

type pair = {
  left : string;
  right : string;
  verdict : verdict;
}

type report = {
  entries : entry list;
  shared : entry list;
  pairs : pair list;
}

let effect_of (a : Aspects.Advice.t) shadow =
  match shadow with
  | Joinpoint.Sh_field_set _ -> Field_touch
  | Joinpoint.Sh_execution _ | Joinpoint.Sh_call _ -> (
      match a.Aspects.Advice.time with
      | Aspects.Advice.Before -> Insert_before
      | Aspects.Advice.After_returning -> Insert_after
      | Aspects.Advice.After | Aspects.Advice.Around -> Wrap)

(* --- per-aspect facts -------------------------------------------------- *)

(* Collect every expression of a statement list (direct expressions of each
   statement, recursively). *)
let rec stmts_exprs acc stmts =
  List.fold_left
    (fun acc s ->
      let acc = List.rev_append (Joinpoint.direct_exprs s) acc in
      match s with
      | Code.Jstmt.S_if (_, t, f) -> stmts_exprs (stmts_exprs acc t) f
      | Code.Jstmt.S_while (_, b)
      | Code.Jstmt.S_sync (_, b)
      | Code.Jstmt.S_block b ->
          stmts_exprs acc b
      | Code.Jstmt.S_try (b, catches, fin) ->
          let acc = stmts_exprs acc b in
          let acc =
            List.fold_left (fun acc (_, _, s) -> stmts_exprs acc s) acc catches
          in
          stmts_exprs acc fin
      | _ -> acc)
    acc stmts

let expr_calls acc e =
  Code.Jexpr.fold_calls
    (fun acc (recv, name, _) ->
      if String.equal name "proceed" && recv = None then acc else name :: acc)
    acc e

let rec expr_sets acc e =
  match e with
  | Code.Jexpr.E_assign (lhs, rhs) ->
      let acc = expr_sets acc rhs in
      (match lhs with
      | Code.Jexpr.E_field (r, f) -> expr_sets (f :: acc) r
      | _ -> expr_sets acc lhs)
  | Code.Jexpr.E_null | Code.Jexpr.E_this | Code.Jexpr.E_bool _
  | Code.Jexpr.E_int _ | Code.Jexpr.E_double _ | Code.Jexpr.E_string _
  | Code.Jexpr.E_name _ ->
      acc
  | Code.Jexpr.E_field (r, _) -> expr_sets acc r
  | Code.Jexpr.E_call (r, _, args) ->
      let acc = match r with Some r -> expr_sets acc r | None -> acc in
      List.fold_left expr_sets acc args
  | Code.Jexpr.E_new (_, args) -> List.fold_left expr_sets acc args
  | Code.Jexpr.E_binary (_, a, b) -> expr_sets (expr_sets acc a) b
  | Code.Jexpr.E_unary (_, a) -> expr_sets acc a
  | Code.Jexpr.E_cast (_, a) -> expr_sets acc a
  | Code.Jexpr.E_instanceof (a, _) -> expr_sets acc a

let rec stmts_named_locals stmts =
  List.exists
    (fun s ->
      match s with
      | Code.Jstmt.S_local (Code.Jtype.T_named _, _, _) -> true
      | Code.Jstmt.S_if (_, t, f) -> stmts_named_locals t || stmts_named_locals f
      | Code.Jstmt.S_while (_, b)
      | Code.Jstmt.S_sync (_, b)
      | Code.Jstmt.S_block b ->
          stmts_named_locals b
      | Code.Jstmt.S_try (b, catches, fin) ->
          stmts_named_locals b
          || List.exists (fun (_, _, s) -> stmts_named_locals s) catches
          || stmts_named_locals fin
      | _ -> false)
    stmts

type aspect_info = {
  g : Aspects.Generator.generated;
  exec_apps : (Joinpoint.shadow * Aspects.Advice.t) list;
  stmt_apps : (Joinpoint.shadow * Aspects.Advice.t) list;
  intro_calls : string list;  (* call names its woven bodies introduce *)
  intro_sets : string list;  (* field names its woven bodies assign *)
  intro_named_decl : bool;
      (* adds named-type fields or locals that can change receiver
         resolution in advised methods *)
  it_patterns : Aspects.Pattern.t list;
  it_exec : (Aspects.Pattern.t * string) list;
      (* inter-type methods with a body: new execution shadows *)
}

let info_of index (g : Aspects.Generator.generated) =
  let aspect = g.Aspects.Generator.aspect in
  let exec_apps = ref [] and stmt_apps = ref [] in
  List.iter
    (fun (a : Aspects.Advice.t) ->
      let wants_exec, wants_stmt = Matcher.kinds a.Aspects.Advice.pointcut in
      List.iter
        (fun ((_ : Code.Jdecl.class_), (e : Index.entry)) ->
          if wants_exec then
            List.iter
              (fun s -> exec_apps := (s, a) :: !exec_apps)
              (Index.exec_matching e.Index.exec a.Aspects.Advice.pointcut);
          if wants_stmt then
            List.iter
              (fun s -> stmt_apps := (s, a) :: !stmt_apps)
              (Index.stmt_matching e.Index.stmts a.Aspects.Advice.pointcut))
        (Index.entries index))
    aspect.Aspects.Aspect.advices;
  let exec_apps = List.rev !exec_apps and stmt_apps = List.rev !stmt_apps in
  (* bodies the weave can splice in: advice bodies of advice that applies
     somewhere, plus every inter-type method body *)
  let applying_advice (a : Aspects.Advice.t) =
    List.exists (fun (_, a') -> a' == a) exec_apps
    || List.exists (fun (_, a') -> a' == a) stmt_apps
  in
  let woven_bodies =
    List.filter_map
      (fun (a : Aspects.Advice.t) ->
        if applying_advice a then Some a.Aspects.Advice.body else None)
      aspect.Aspects.Aspect.advices
    @ List.filter_map
        (fun it ->
          match it with
          | Aspects.Aspect.It_method (_, m) -> m.Code.Jdecl.body
          | Aspects.Aspect.It_field _ -> None)
        aspect.Aspects.Aspect.intertypes
  in
  let exprs = List.fold_left stmts_exprs [] woven_bodies in
  let intro_calls =
    List.sort_uniq String.compare (List.fold_left expr_calls [] exprs)
  in
  let intro_sets =
    List.sort_uniq String.compare (List.fold_left expr_sets [] exprs)
  in
  let intro_named_decl =
    List.exists stmts_named_locals woven_bodies
    || List.exists
         (fun it ->
           match it with
           | Aspects.Aspect.It_field (_, f) -> (
               match f.Code.Jdecl.field_type with
               | Code.Jtype.T_named _ -> true
               | _ -> false)
           | Aspects.Aspect.It_method _ -> false)
         aspect.Aspects.Aspect.intertypes
  in
  let it_patterns =
    List.map
      (function
        | Aspects.Aspect.It_field (p, _) | Aspects.Aspect.It_method (p, _) -> p)
      aspect.Aspects.Aspect.intertypes
  in
  let it_exec =
    List.filter_map
      (fun it ->
        match it with
        | Aspects.Aspect.It_method (p, m) when m.Code.Jdecl.body <> None ->
            Some (p, m.Code.Jdecl.method_name)
        | _ -> None)
      aspect.Aspects.Aspect.intertypes
  in
  {
    g;
    exec_apps;
    stmt_apps;
    intro_calls;
    intro_sets;
    intro_named_decl;
    it_patterns;
    it_exec;
  }

(* --- the pair rules ---------------------------------------------------- *)

(* May a pointcut match a call/set/execution shadow we only know the member
   name of? Conservative: unknown sub-predicates answer "maybe". *)
let rec may_match_call pc name =
  match pc with
  | Aspects.Pointcut.Execution _ | Aspects.Pointcut.Set_field _ -> false
  | Aspects.Pointcut.Call mp ->
      Aspects.Pattern.matches mp.Aspects.Pattern.mp_method name
  | Aspects.Pointcut.Within _ | Aspects.Pointcut.Not _ -> true
  | Aspects.Pointcut.And (a, b) -> may_match_call a name && may_match_call b name
  | Aspects.Pointcut.Or (a, b) -> may_match_call a name || may_match_call b name

let rec may_match_set pc fname =
  match pc with
  | Aspects.Pointcut.Execution _ | Aspects.Pointcut.Call _ -> false
  | Aspects.Pointcut.Set_field (_, fp) -> Aspects.Pattern.matches fp fname
  | Aspects.Pointcut.Within _ | Aspects.Pointcut.Not _ -> true
  | Aspects.Pointcut.And (a, b) -> may_match_set a fname && may_match_set b fname
  | Aspects.Pointcut.Or (a, b) -> may_match_set a fname || may_match_set b fname

let rec may_match_exec pc mname =
  match pc with
  | Aspects.Pointcut.Call _ | Aspects.Pointcut.Set_field _ -> false
  | Aspects.Pointcut.Execution mp ->
      Aspects.Pattern.matches mp.Aspects.Pattern.mp_method mname
  | Aspects.Pointcut.Within _ | Aspects.Pointcut.Not _ -> true
  | Aspects.Pointcut.And (a, b) -> may_match_exec a mname && may_match_exec b mname
  | Aspects.Pointcut.Or (a, b) -> may_match_exec a mname || may_match_exec b mname

let patterns_may_overlap p q =
  Aspects.Pattern.is_wildcard p
  || Aspects.Pattern.is_wildcard q
  || String.equal p q

let ends_in_return stmts =
  match List.rev stmts with
  | Code.Jstmt.S_return _ :: _ -> true
  | _ -> false

(* Execution advice from two different aspects at the same shadow commutes
   only in one shape: insert-before against insert-after-return, where the
   before-body does not itself end in a return (a trailing return in the
   prepended body would become the insertion anchor of the other side when
   the original body is empty). Everything else — wrap against anything,
   two inserts on the same side — is order-observable. *)
let exec_commutes (x : Aspects.Advice.t) (y : Aspects.Advice.t) =
  match (x.Aspects.Advice.time, y.Aspects.Advice.time) with
  | Aspects.Advice.Before, Aspects.Advice.After_returning ->
      not (ends_in_return x.Aspects.Advice.body)
  | Aspects.Advice.After_returning, Aspects.Advice.Before ->
      not (ends_in_return y.Aspects.Advice.body)
  | _ -> false

let stmt_method = function
  | Joinpoint.Sh_call { within_class; within_method; _ }
  | Joinpoint.Sh_field_set { within_class; within_method; _ } ->
      (within_class, within_method)
  | Joinpoint.Sh_execution { class_name; method_name } ->
      (class_name, method_name)

let aspect_name info =
  info.g.Aspects.Generator.aspect.Aspects.Aspect.aspect_name

let time_str (a : Aspects.Advice.t) =
  Aspects.Advice.time_to_string a.Aspects.Advice.time

(* The rules, first hit wins. [ia] has the higher precedence. *)
let find_conflict ia ib =
  let conflict witness reason = Some (Conflicting { witness; reason }) in
  (* shared execution shadow with non-commuting advice *)
  let shared_exec () =
    List.find_map
      (fun (s, x) ->
        List.find_map
          (fun (s', y) ->
            if s = s' && not (exec_commutes x y) then
              conflict (Some s)
                (Printf.sprintf "non-commuting advice at a shared join point (%s %s vs %s %s)"
                   (aspect_name ia) (time_str x) (aspect_name ib) (time_str y))
            else None)
          ib.exec_apps)
      ia.exec_apps
  in
  (* both wrap statements in the same method: wrapping order and shadow
     discovery inside the other's wrapper are order-observable *)
  let shared_stmt () =
    List.find_map
      (fun (s, _) ->
        let m = stmt_method s in
        if List.exists (fun (s', _) -> stmt_method s' = m) ib.stmt_apps then
          conflict (Some s)
            (Printf.sprintf "both wrap statements inside %s.%s" (fst m) (snd m))
        else None)
      ia.stmt_apps
  in
  (* statement wrapping can swallow the trailing return that
     after-returning execution advice anchors on *)
  let stmt_vs_after_returning a b =
    List.find_map
      (fun (s, _) ->
        let cls, mth = stmt_method s in
        List.find_map
          (fun (s', (y : Aspects.Advice.t)) ->
            match s' with
            | Joinpoint.Sh_execution { class_name; method_name }
              when String.equal class_name cls
                   && String.equal method_name mth
                   && y.Aspects.Advice.time = Aspects.Advice.After_returning ->
                conflict (Some s)
                  (Printf.sprintf
                     "%s wraps statements in %s.%s where %s's after-returning advice anchors on the trailing return"
                     (aspect_name a) cls mth (aspect_name b))
            | _ -> None)
          b.exec_apps)
      a.stmt_apps
  in
  (* shadows one aspect's woven bodies introduce, matched by the other *)
  let introduced a b =
    let stmt_advice_matching f =
      List.find_map
        (fun (adv : Aspects.Advice.t) ->
          let _, wants_stmt = Matcher.kinds adv.Aspects.Advice.pointcut in
          if wants_stmt && f adv.Aspects.Advice.pointcut then Some adv else None)
        b.g.Aspects.Generator.aspect.Aspects.Aspect.advices
    in
    match
      List.find_map
        (fun n ->
          Option.map (fun adv -> (n, adv))
            (stmt_advice_matching (fun pc -> may_match_call pc n)))
        a.intro_calls
    with
    | Some (n, _) ->
        conflict
          (Some
             (Joinpoint.Sh_call
                {
                  within_class = "<woven advice>";
                  within_method = "*";
                  receiver_class = None;
                  method_name = n;
                }))
          (Printf.sprintf "%s weaves calls to %s() that %s's statement advice may match"
             (aspect_name a) n (aspect_name b))
    | None -> (
        match
          List.find_map
            (fun f ->
              Option.map (fun adv -> (f, adv))
                (stmt_advice_matching (fun pc -> may_match_set pc f)))
            a.intro_sets
        with
        | Some (f, _) ->
            conflict
              (Some
                 (Joinpoint.Sh_field_set
                    {
                      within_class = "<woven advice>";
                      within_method = "*";
                      target_class = "?";
                      field_name = f;
                    }))
              (Printf.sprintf
                 "%s weaves assignments to %s that %s's statement advice may match"
                 (aspect_name a) f (aspect_name b))
        | None -> None)
  in
  (* execution shadows created by inter-type methods *)
  let intertype_exec a b =
    List.find_map
      (fun (p, mname) ->
        let hit =
          List.exists
            (fun (adv : Aspects.Advice.t) ->
              let wants_exec, _ = Matcher.kinds adv.Aspects.Advice.pointcut in
              wants_exec && may_match_exec adv.Aspects.Advice.pointcut mname)
            b.g.Aspects.Generator.aspect.Aspects.Aspect.advices
        in
        if hit then
          conflict
            (Some (Joinpoint.Sh_execution { class_name = p; method_name = mname }))
            (Printf.sprintf
               "%s introduces method %s() (classes %s) whose execution %s's advice may match"
               (aspect_name a) mname p (aspect_name b))
        else None)
      a.it_exec
  in
  (* two sets of inter-type members landing on overlapping classes: member
     order (and duplicate-field suppression) is weave-order-dependent *)
  let intertype_overlap () =
    List.find_map
      (fun p ->
        List.find_map
          (fun q ->
            if patterns_may_overlap p q then
              conflict None
                (Printf.sprintf
                   "both add inter-type members to classes matching %s and %s" p q)
            else None)
          ib.it_patterns)
      ia.it_patterns
  in
  (* named-type declarations can change receiver resolution, and with it
     the other aspect's statement-shadow identities *)
  let named_decl a b =
    let b_has_stmt_advice =
      List.exists
        (fun (adv : Aspects.Advice.t) ->
          snd (Matcher.kinds adv.Aspects.Advice.pointcut))
        b.g.Aspects.Generator.aspect.Aspects.Aspect.advices
    in
    if a.intro_named_decl && b_has_stmt_advice then
      conflict None
        (Printf.sprintf
           "%s adds named-type declarations that can change receiver resolution for %s's statement advice"
           (aspect_name a) (aspect_name b))
    else None
  in
  let ( <|> ) r f = match r with Some _ -> r | None -> f () in
  shared_exec ()
  <|> shared_stmt
  <|> (fun () -> stmt_vs_after_returning ia ib)
  <|> (fun () -> stmt_vs_after_returning ib ia)
  <|> (fun () -> introduced ia ib)
  <|> (fun () -> introduced ib ia)
  <|> (fun () -> intertype_exec ia ib)
  <|> (fun () -> intertype_exec ib ia)
  <|> intertype_overlap
  <|> (fun () -> named_decl ia ib)
  <|> fun () -> named_decl ib ia

let rec pairs_of = function
  | [] -> []
  | ia :: rest ->
      List.map
        (fun ib ->
          let verdict =
            match find_conflict ia ib with
            | Some v -> v
            | None -> Independent
          in
          { left = aspect_name ia; right = aspect_name ib; verdict })
        rest
      @ pairs_of rest

(* --- the report -------------------------------------------------------- *)

let analyze generated program =
  let ordered = Precedence.order generated in
  let index = Index.build program in
  let infos = List.map (info_of index) ordered in
  (* invert the per-aspect applications into per-shadow adviser lists;
     consecutive duplicate occurrences of one structural shadow would
     otherwise double their advisers *)
  let advisers : (Joinpoint.shadow, advising list) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun info ->
      let add (s, (a : Aspects.Advice.t)) =
        let adv =
          {
            aspect_name = aspect_name info;
            concern = info.g.Aspects.Generator.aspect.Aspects.Aspect.concern;
            advice_name = a.Aspects.Advice.advice_name;
            time = a.Aspects.Advice.time;
            precedence = info.g.Aspects.Generator.seq;
            effect = effect_of a s;
          }
        in
        match Hashtbl.find_opt advisers s with
        | Some (prev :: _) when prev = adv -> ()
        | Some l -> Hashtbl.replace advisers s (adv :: l)
        | None -> Hashtbl.replace advisers s [ adv ]
      in
      List.iter add info.exec_apps;
      List.iter add info.stmt_apps)
    infos;
  let entries =
    List.filter_map
      (fun shadow ->
        match Hashtbl.find_opt advisers shadow with
        | None | Some [] -> None
        | Some advs ->
            let advs = List.rev advs in
            let concerns =
              List.sort_uniq String.compare (List.map (fun a -> a.concern) advs)
            in
            Some { at = shadow; advisers = advs; shared = List.length concerns > 1 })
      (Index.all_shadows index)
  in
  {
    entries;
    shared = List.filter (fun (e : entry) -> e.shared) entries;
    pairs = pairs_of infos;
  }

let render report =
  let entry_lines (e : entry) =
    (Printf.sprintf "%s %s"
       (if e.shared then "[!]" else "   ")
       (Joinpoint.describe e.at))
    :: List.map
         (fun a ->
           Printf.sprintf "      %d. %s/%s (%s, %s, %s)" a.precedence
             a.aspect_name a.advice_name a.concern
             (Aspects.Advice.time_to_string a.time)
             (effect_to_string a.effect))
         e.advisers
  in
  let pair_lines =
    match report.pairs with
    | [] -> []
    | pairs ->
        let independent, conflicting =
          List.partition (fun p -> p.verdict = Independent) pairs
        in
        Printf.sprintf "aspect pairs: %d independent, %d conflicting"
          (List.length independent)
          (List.length conflicting)
        :: List.map
             (fun p ->
               match p.verdict with
               | Independent ->
                   Printf.sprintf "    %s ~ %s: independent" p.left p.right
               | Conflicting { witness; reason } ->
                   Printf.sprintf "[!] %s x %s: %s%s" p.left p.right reason
                     (match witness with
                     | Some s -> Printf.sprintf " [at %s]" (Joinpoint.describe s)
                     | None -> ""))
             pairs
  in
  String.concat "\n"
    ((Printf.sprintf "%d advised join point(s), %d shared across concerns"
        (List.length report.entries)
        (List.length report.shared))
    :: (List.concat_map entry_lines report.entries @ pair_lines))
