(** Critical-pair static aspect-interference analysis.

    The paper resolves multi-aspect composition by fixing precedence from
    the transformation order — but a developer still wants to know where
    that resolution *matters*. This analysis answers two questions:

    - {e where do aspects meet}: every join point (all three shadow kinds
      — execution, call, field-set) with the advice that applies to it, in
      effective precedence order, shared-across-concerns ones flagged;
    - {e does order matter}: for every aspect pair, whether their weaves
      commute. A pair is {e conflicting} when a critical overlap exists —
      advice from both at one shadow whose effects do not commute,
      statement wrapping colliding in one method, shadows introduced by
      one aspect's woven bodies or inter-type members that the other's
      pointcuts may match, or named-type declarations that can shift
      receiver resolution under the other's statement advice. All rules
      are conservative (may-analysis): {e independent} is the strong
      claim, and the fuzz harness verifies that independent pairs really
      commute under {!Weave.weave_one}. *)

(** How advice changes code at a join point. *)
type effect_kind =
  | Wrap  (** [after] (try/finally) and [around]: encloses the original *)
  | Insert_before  (** [before]: prepends, original unchanged *)
  | Insert_after  (** [after returning]: appends before the trailing return *)
  | Field_touch  (** statement advice at a field-set shadow *)

val effect_to_string : effect_kind -> string

(** Advice applying at one join point. *)
type advising = {
  aspect_name : string;
  concern : string;
  advice_name : string;
  time : Aspects.Advice.time;
  precedence : int;  (** sequence number of the source transformation *)
  effect : effect_kind;
}

type entry = {
  at : Joinpoint.shadow;
  advisers : advising list;  (** highest precedence first *)
  shared : bool;  (** advised by more than one concern *)
}

type verdict =
  | Independent  (** weave order provably unobservable *)
  | Conflicting of {
      witness : Joinpoint.shadow option;
          (** a shadow exhibiting the overlap, when one exists ([None] for
              declaration-shape conflicts such as overlapping inter-type
              patterns) *)
      reason : string;
    }

(** One unordered aspect pair; [left] has the higher precedence. *)
type pair = {
  left : string;
  right : string;
  verdict : verdict;
}

type report = {
  entries : entry list;  (** only advised join points, program order *)
  shared : entry list;  (** the subset advised by more than one concern *)
  pairs : pair list;  (** every aspect pair, precedence-major order *)
}

val analyze :
  Aspects.Generator.generated list -> Code.Junit.program -> report
(** Resolves every generated aspect's advice against the joinpoint index
    ({!Index}), gated by {!Matcher.kinds} exactly as the weaver applies it
    (so inert pure-[within] advice is not reported), and runs the
    critical-pair rules over every aspect pair. *)

val render : report -> string
(** Human-readable listing; shared join points and conflicting pairs are
    marked with [!]. *)
