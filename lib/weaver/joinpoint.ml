type shadow =
  | Sh_execution of {
      class_name : string;
      method_name : string;
    }
  | Sh_call of {
      within_class : string;
      within_method : string;
      receiver_class : string option;
      method_name : string;
    }
  | Sh_field_set of {
      within_class : string;
      within_method : string;
      target_class : string;
      field_name : string;
    }

let describe = function
  | Sh_execution { class_name; method_name } ->
      Printf.sprintf "execution(%s.%s)" class_name method_name
  | Sh_call { receiver_class; method_name; _ } ->
      Printf.sprintf "call(%s.%s)"
        (Option.value ~default:"?" receiver_class)
        method_name
  | Sh_field_set { target_class; field_name; _ } ->
      Printf.sprintf "set(%s.%s)" target_class field_name

let enclosing_class = function
  | Sh_execution { class_name; _ } -> class_name
  | Sh_call { within_class; _ } -> within_class
  | Sh_field_set { within_class; _ } -> within_class

let execution_shadows program =
  List.concat_map
    (fun (c : Code.Jdecl.class_) ->
      List.filter_map
        (fun (m : Code.Jdecl.method_) ->
          match m.Code.Jdecl.body with
          | Some _ ->
              Some
                (Sh_execution
                   {
                     class_name = c.Code.Jdecl.class_name;
                     method_name = m.Code.Jdecl.method_name;
                   })
          | None -> None)
        c.Code.Jdecl.methods)
    (Code.Junit.classes program)

(* --- receiver-type resolution for call/set shadows ------------------- *)

type scope = {
  current_class : string;
  var_types : (string * string) list;  (* variable -> class name, when known *)
}

let class_of_jtype = function
  | Code.Jtype.T_named n -> Some n
  | _ -> None

let scope_of_method (c : Code.Jdecl.class_) (m : Code.Jdecl.method_) =
  let param_types =
    List.filter_map
      (fun (p : Code.Jdecl.param) ->
        Option.map
          (fun cls -> (p.Code.Jdecl.param_name, cls))
          (class_of_jtype p.Code.Jdecl.param_type))
      m.Code.Jdecl.params
  in
  let field_types =
    List.filter_map
      (fun (f : Code.Jdecl.field) ->
        Option.map
          (fun cls -> (f.Code.Jdecl.field_name, cls))
          (class_of_jtype f.Code.Jdecl.field_type))
      c.Code.Jdecl.fields
  in
  let local_types =
    match m.Code.Jdecl.body with
    | None -> []
    | Some body ->
        let rec collect acc stmts =
          List.fold_left
            (fun acc stmt ->
              match stmt with
              | Code.Jstmt.S_local (t, name, _) -> (
                  match class_of_jtype t with
                  | Some cls -> (name, cls) :: acc
                  | None -> acc)
              | Code.Jstmt.S_if (_, a, b) -> collect (collect acc a) b
              | Code.Jstmt.S_while (_, b)
              | Code.Jstmt.S_sync (_, b)
              | Code.Jstmt.S_block b ->
                  collect acc b
              | Code.Jstmt.S_try (b, catches, fin) ->
                  let acc = collect acc b in
                  let acc =
                    List.fold_left
                      (fun acc (_, _, stmts) -> collect acc stmts)
                      acc catches
                  in
                  collect acc fin
              | Code.Jstmt.S_expr _ | Code.Jstmt.S_return _
              | Code.Jstmt.S_throw _ | Code.Jstmt.S_comment _ ->
                  acc)
            acc stmts
        in
        collect [] body
  in
  {
    current_class = c.Code.Jdecl.class_name;
    var_types = param_types @ field_types @ local_types;
  }

let receiver_class scope = function
  | None -> Some scope.current_class (* unqualified call *)
  | Some Code.Jexpr.E_this -> Some scope.current_class
  | Some (Code.Jexpr.E_name v) -> List.assoc_opt v scope.var_types
  | Some (Code.Jexpr.E_field (Code.Jexpr.E_this, f)) ->
      List.assoc_opt f scope.var_types
  | Some (Code.Jexpr.E_new (c, _)) -> Some c
  | Some (Code.Jexpr.E_cast (t, _)) -> class_of_jtype t
  | Some _ -> None

(* Call shadows occurring anywhere inside an expression. *)
let call_shadows_in_expr scope ~within_method e =
  Code.Jexpr.fold_calls
    (fun acc (recv, name, _) ->
      if String.equal name "proceed" && recv = None then acc
      else
        Sh_call
          {
            within_class = scope.current_class;
            within_method;
            receiver_class = receiver_class scope recv;
            method_name = name;
          }
        :: acc)
    [] e

let field_set_shadows_in_expr scope ~within_method e =
  let rec walk acc e =
    match e with
    | Code.Jexpr.E_assign (lhs, rhs) ->
        let acc = walk acc rhs in
        let target =
          match lhs with
          | Code.Jexpr.E_field (Code.Jexpr.E_this, f) ->
              Some (scope.current_class, f)
          | Code.Jexpr.E_field (Code.Jexpr.E_name v, f) ->
              Option.map (fun cls -> (cls, f)) (List.assoc_opt v scope.var_types)
          | _ -> None
        in
        (match target with
        | Some (target_class, field_name) ->
            Sh_field_set
              {
                within_class = scope.current_class;
                within_method;
                target_class;
                field_name;
              }
            :: acc
        | None -> acc)
    | Code.Jexpr.E_null | Code.Jexpr.E_this | Code.Jexpr.E_bool _
    | Code.Jexpr.E_int _ | Code.Jexpr.E_double _ | Code.Jexpr.E_string _
    | Code.Jexpr.E_name _ ->
        acc
    | Code.Jexpr.E_field (r, _) -> walk acc r
    | Code.Jexpr.E_call (r, _, args) ->
        let acc = match r with Some r -> walk acc r | None -> acc in
        List.fold_left walk acc args
    | Code.Jexpr.E_new (_, args) -> List.fold_left walk acc args
    | Code.Jexpr.E_binary (_, a, b) -> walk (walk acc a) b
    | Code.Jexpr.E_unary (_, a) -> walk acc a
    | Code.Jexpr.E_cast (_, a) -> walk acc a
    | Code.Jexpr.E_instanceof (a, _) -> walk acc a
  in
  walk [] e

(* Expressions held directly by a statement (not those of nested
   statements). Every expression of a body is a direct expression of
   exactly one statement, so walking all statements through this covers
   every call/set shadow exactly once. *)
let direct_exprs = function
  | Code.Jstmt.S_expr e -> [ e ]
  | Code.Jstmt.S_local (_, _, Some e) -> [ e ]
  | Code.Jstmt.S_return (Some e) -> [ e ]
  | Code.Jstmt.S_if (c, _, _) -> [ c ]
  | Code.Jstmt.S_while (c, _) -> [ c ]
  | Code.Jstmt.S_throw e -> [ e ]
  | Code.Jstmt.S_sync (e, _) -> [ e ]
  | _ -> []

let statement_shadows scope ~within_method stmt =
  List.concat_map
    (fun e ->
      call_shadows_in_expr scope ~within_method e
      @ field_set_shadows_in_expr scope ~within_method e)
    (direct_exprs stmt)

let shadows_of_method (c : Code.Jdecl.class_) (m : Code.Jdecl.method_) =
  match m.Code.Jdecl.body with
  | None -> []
  | Some body ->
      let scope = scope_of_method c m in
      let within_method = m.Code.Jdecl.method_name in
      let rec walk acc stmts =
        List.fold_left
          (fun acc stmt ->
            let acc =
              List.rev_append
                (statement_shadows scope ~within_method stmt)
                acc
            in
            match stmt with
            | Code.Jstmt.S_if (_, t, f) -> walk (walk acc t) f
            | Code.Jstmt.S_while (_, b)
            | Code.Jstmt.S_sync (_, b)
            | Code.Jstmt.S_block b ->
                walk acc b
            | Code.Jstmt.S_try (b, catches, fin) ->
                let acc = walk acc b in
                let acc =
                  List.fold_left
                    (fun acc (_, _, stmts) -> walk acc stmts)
                    acc catches
                in
                walk acc fin
            | _ -> acc)
          acc stmts
      in
      Sh_execution
        {
          class_name = c.Code.Jdecl.class_name;
          method_name = m.Code.Jdecl.method_name;
        }
      :: List.rev (walk [] body)

let shadows_of_class (c : Code.Jdecl.class_) =
  List.concat_map (shadows_of_method c) c.Code.Jdecl.methods

let all_shadows program =
  List.concat_map shadows_of_class (Code.Junit.classes program)
