(** The join-point model: shadows in the code model where advice can
    apply, plus the static extraction of shadows from method bodies. *)

type shadow =
  | Sh_execution of {
      class_name : string;
      method_name : string;
    }  (** the execution of a method body *)
  | Sh_call of {
      within_class : string;
      within_method : string;
      receiver_class : string option;
          (** statically resolved receiver class; [None] when the receiver's
              type cannot be resolved *)
      method_name : string;
    }  (** a call site inside a method body *)
  | Sh_field_set of {
      within_class : string;
      within_method : string;
      target_class : string;
      field_name : string;
    }  (** an assignment to a field *)

val describe : shadow -> string
(** AspectJ-style description, e.g. ["execution(Account.withdraw)"] — the
    value of the [thisJoinPoint] pseudo-variable. *)

val enclosing_class : shadow -> string
(** The class the shadow is lexically within (for [within] pointcuts). *)

val execution_shadows : Code.Junit.program -> shadow list
(** Every method-execution shadow of a program (abstract/bodyless methods
    excluded). *)

(** {1 Shadow extraction}

    Call and field-set shadows live inside method bodies; resolving them
    needs the lexical scope (parameter, field and local types) of the
    enclosing method. The weaver and the joinpoint index both extract
    through these functions, so they agree on what a shadow is. *)

type scope
(** The receiver-resolution scope of one method: its class plus a map from
    variable names to statically-known class names. *)

val scope_of_method : Code.Jdecl.class_ -> Code.Jdecl.method_ -> scope

val receiver_class : scope -> Code.Jexpr.t option -> string option
(** Statically resolve the class of a call receiver: [None] receiver and
    [this] resolve to the current class; names and [this.f] through the
    scope; [new C(...)] and casts to their named type; anything else is
    unresolved. *)

val call_shadows_in_expr :
  scope -> within_method:string -> Code.Jexpr.t -> shadow list
(** Call shadows occurring anywhere inside an expression (the bare
    [proceed()] marker excluded). *)

val field_set_shadows_in_expr :
  scope -> within_method:string -> Code.Jexpr.t -> shadow list
(** Field-assignment shadows with a resolvable target class. *)

val direct_exprs : Code.Jstmt.t -> Code.Jexpr.t list
(** The expressions held directly by a statement — not those of nested
    statements. Every expression of a body is a direct expression of
    exactly one statement. *)

val statement_shadows :
  scope -> within_method:string -> Code.Jstmt.t -> shadow list
(** Call and set shadows of a statement's direct expressions — exactly the
    shadows statement advice considers when deciding to wrap it. *)

val shadows_of_method : Code.Jdecl.class_ -> Code.Jdecl.method_ -> shadow list
(** All shadows of one method in program order: the execution shadow first,
    then call/set shadows statement by statement. Empty for bodyless
    methods. *)

val shadows_of_class : Code.Jdecl.class_ -> shadow list

val all_shadows : Code.Junit.program -> shadow list
(** Every shadow of a program, all three kinds, program order. *)
