(* Which shadow domains a pointcut can match: [(wants_exec, wants_stmt)].
   A pure [within] pointcut constrains but never selects, so it wants
   neither — advice gated on it is inert, and the weaver, the joinpoint
   index and the interference analysis must all agree on that. *)
let rec kinds = function
  | Aspects.Pointcut.Execution _ -> (true, false)
  | Aspects.Pointcut.Call _ | Aspects.Pointcut.Set_field _ -> (false, true)
  | Aspects.Pointcut.Within _ -> (false, false)
  | Aspects.Pointcut.And (x, y) | Aspects.Pointcut.Or (x, y) ->
      let ex, st = kinds x and ey, sy = kinds y in
      (ex || ey, st || sy)
  | Aspects.Pointcut.Not x -> kinds x

(* ---- tree-walking baseline ----------------------------------------------- *)

(* The original interpreter over the pointcut AST: re-examines the node
   structure and runs the generic wildcard DP at every shadow. Kept verbatim
   as the differential baseline for the compiled deciders below (the [vm]
   oracle checks decider ≡ tree on random pointcut × shadow pairs) and as
   the [Vm.with_vm false] ablation arm. *)
let rec matches_tree pc shadow =
  match (pc, shadow) with
  | Aspects.Pointcut.Execution mp, Joinpoint.Sh_execution { class_name; method_name } ->
      Aspects.Pattern.matches_method mp ~class_name ~method_name
  | Aspects.Pointcut.Call mp, Joinpoint.Sh_call { receiver_class; method_name; _ }
    -> (
      match receiver_class with
      | Some class_name ->
          Aspects.Pattern.matches_method mp ~class_name ~method_name
      | None ->
          (* Unresolved receiver: the shadow could belong to any class, so
             the class pattern never excludes it — only the method pattern
             filters. Narrow with [within] when precision matters. *)
          Aspects.Pattern.matches mp.Aspects.Pattern.mp_method method_name)
  | ( Aspects.Pointcut.Set_field (cls_pat, field_pat),
      Joinpoint.Sh_field_set { target_class; field_name; _ } ) ->
      Aspects.Pattern.matches cls_pat target_class
      && Aspects.Pattern.matches field_pat field_name
  | Aspects.Pointcut.Within cls_pat, shadow ->
      Aspects.Pattern.matches cls_pat (Joinpoint.enclosing_class shadow)
  | Aspects.Pointcut.And (a, b), shadow ->
      matches_tree a shadow && matches_tree b shadow
  | Aspects.Pointcut.Or (a, b), shadow ->
      matches_tree a shadow || matches_tree b shadow
  | Aspects.Pointcut.Not a, shadow -> not (matches_tree a shadow)
  | Aspects.Pointcut.Execution _, (Joinpoint.Sh_call _ | Joinpoint.Sh_field_set _)
  | Aspects.Pointcut.Call _, (Joinpoint.Sh_execution _ | Joinpoint.Sh_field_set _)
  | Aspects.Pointcut.Set_field _, (Joinpoint.Sh_execution _ | Joinpoint.Sh_call _)
    ->
      false

(* ---- compiled deciders --------------------------------------------------- *)

(* Per-node-kind execution counters ([vm.exec.matcher.<op>]), shared with
   the coverage assertion in the check driver. *)
let op_names =
  [
    "exec";
    "call";
    "set";
    "within";
    "and";
    "or";
    "not";
    "pat_lit";
    "pat_any";
    "pat_prefix";
    "pat_suffix";
    "pat_infix";
    "pat_generic";
  ]

let profile = Vm.Profile.create ~prefix:"matcher" op_names

(* Pattern specialization: the generic '*'-substring DP allocates a
   position array and scans it per pattern character; almost every
   pattern the concern library produces is one of five cheap shapes.
   Each compiled pattern is a [string -> bool] with the DP's exact
   semantics ('*' matches any substring, including empty).

   Compiled closures capture the profile shard [sh] of the compiling
   domain directly — one DLS fetch per compile instead of one per node
   hit. Sound because the decider cache is domain-local, so a closure
   only ever runs on the domain that compiled it. *)
let contains_sub s needle =
  let n = String.length needle and len = String.length s in
  if n = 0 then true
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i + n <= len do
      if String.sub s !i n = needle then found := true else incr i
    done;
    !found
  end

let compile_pattern sh p =
  let len = String.length p in
  let star_free s = not (String.contains s '*') in
  if star_free p then fun name ->
    Vm.Profile.hit sh 7;
    String.equal p name
  else if String.equal p "*" then fun _ ->
    Vm.Profile.hit sh 8;
    true
  else if p.[0] = '*' && star_free (String.sub p 1 (len - 1)) then
    let suffix = String.sub p 1 (len - 1) in
    fun name ->
      Vm.Profile.hit sh 10;
      String.ends_with ~suffix name
  else if p.[len - 1] = '*' && star_free (String.sub p 0 (len - 1)) then
    let prefix = String.sub p 0 (len - 1) in
    fun name ->
      Vm.Profile.hit sh 9;
      String.starts_with ~prefix name
  else if len >= 2 && p.[0] = '*' && p.[len - 1] = '*'
          && star_free (String.sub p 1 (len - 2)) then
    let core = String.sub p 1 (len - 2) in
    fun name ->
      Vm.Profile.hit sh 11;
      contains_sub name core
  else fun name ->
    Vm.Profile.hit sh 12;
    Aspects.Pattern.matches p name

let rec compile sh pc =
  match pc with
  | Aspects.Pointcut.Execution mp ->
      let cls = compile_pattern sh mp.Aspects.Pattern.mp_class in
      let meth = compile_pattern sh mp.Aspects.Pattern.mp_method in
      fun shadow ->
        Vm.Profile.hit sh 0;
        (match shadow with
        | Joinpoint.Sh_execution { class_name; method_name } ->
            cls class_name && meth method_name
        | _ -> false)
  | Aspects.Pointcut.Call mp ->
      let cls = compile_pattern sh mp.Aspects.Pattern.mp_class in
      let meth = compile_pattern sh mp.Aspects.Pattern.mp_method in
      fun shadow ->
        Vm.Profile.hit sh 1;
        (match shadow with
        | Joinpoint.Sh_call { receiver_class; method_name; _ } -> (
            match receiver_class with
            | Some class_name -> cls class_name && meth method_name
            | None -> meth method_name)
        | _ -> false)
  | Aspects.Pointcut.Set_field (cls_pat, field_pat) ->
      let cls = compile_pattern sh cls_pat in
      let field = compile_pattern sh field_pat in
      fun shadow ->
        Vm.Profile.hit sh 2;
        (match shadow with
        | Joinpoint.Sh_field_set { target_class; field_name; _ } ->
            cls target_class && field field_name
        | _ -> false)
  | Aspects.Pointcut.Within cls_pat ->
      let cls = compile_pattern sh cls_pat in
      fun shadow ->
        Vm.Profile.hit sh 3;
        cls (Joinpoint.enclosing_class shadow)
  | Aspects.Pointcut.And (a, b) ->
      let da = compile sh a and db = compile sh b in
      fun shadow ->
        Vm.Profile.hit sh 4;
        da shadow && db shadow
  | Aspects.Pointcut.Or (a, b) ->
      let da = compile sh a and db = compile sh b in
      fun shadow ->
        Vm.Profile.hit sh 5;
        da shadow || db shadow
  | Aspects.Pointcut.Not a ->
      let da = compile sh a in
      fun shadow ->
        Vm.Profile.hit sh 6;
        not (da shadow)

(* Deciders are cached per pointcut value, domain-locally (a shared table
   would race under Par.Pool): one compile per distinct pointcut per
   domain, then every weave/index probe reuses the closure. The table is
   dropped wholesale on pathological churn, like the OCL parse cache. *)
let capacity = 512

let cache_key : (Aspects.Pointcut.t, Joinpoint.shadow -> bool) Hashtbl.t Domain.DLS.key
    =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let decider pc =
  let table = Domain.DLS.get cache_key in
  match Hashtbl.find_opt table pc with
  | Some d -> d
  | None ->
      Obs.incr "vm.compile.matcher" [];
      let d = compile (Vm.Profile.shard profile) pc in
      if Hashtbl.length table >= capacity then Hashtbl.reset table;
      Hashtbl.add table pc d;
      d

(* Staged on the pointcut: [matches pc] pays the decider-cache lookup (a
   structural hash of the pointcut AST) once, and the returned closure is
   applied per shadow. The weaver's [List.filter (Matcher.matches pc)]
   call sites stage automatically. *)
let matches pc =
  if Vm.enabled () then decider pc else matches_tree pc
