(* Which shadow domains a pointcut can match: [(wants_exec, wants_stmt)].
   A pure [within] pointcut constrains but never selects, so it wants
   neither — advice gated on it is inert, and the weaver, the joinpoint
   index and the interference analysis must all agree on that. *)
let rec kinds = function
  | Aspects.Pointcut.Execution _ -> (true, false)
  | Aspects.Pointcut.Call _ | Aspects.Pointcut.Set_field _ -> (false, true)
  | Aspects.Pointcut.Within _ -> (false, false)
  | Aspects.Pointcut.And (x, y) | Aspects.Pointcut.Or (x, y) ->
      let ex, st = kinds x and ey, sy = kinds y in
      (ex || ey, st || sy)
  | Aspects.Pointcut.Not x -> kinds x

let rec matches pc shadow =
  match (pc, shadow) with
  | Aspects.Pointcut.Execution mp, Joinpoint.Sh_execution { class_name; method_name } ->
      Aspects.Pattern.matches_method mp ~class_name ~method_name
  | Aspects.Pointcut.Call mp, Joinpoint.Sh_call { receiver_class; method_name; _ }
    -> (
      match receiver_class with
      | Some class_name ->
          Aspects.Pattern.matches_method mp ~class_name ~method_name
      | None ->
          (* Unresolved receiver: the shadow could belong to any class, so
             the class pattern never excludes it — only the method pattern
             filters. Narrow with [within] when precision matters. *)
          Aspects.Pattern.matches mp.Aspects.Pattern.mp_method method_name)
  | ( Aspects.Pointcut.Set_field (cls_pat, field_pat),
      Joinpoint.Sh_field_set { target_class; field_name; _ } ) ->
      Aspects.Pattern.matches cls_pat target_class
      && Aspects.Pattern.matches field_pat field_name
  | Aspects.Pointcut.Within cls_pat, shadow ->
      Aspects.Pattern.matches cls_pat (Joinpoint.enclosing_class shadow)
  | Aspects.Pointcut.And (a, b), shadow -> matches a shadow && matches b shadow
  | Aspects.Pointcut.Or (a, b), shadow -> matches a shadow || matches b shadow
  | Aspects.Pointcut.Not a, shadow -> not (matches a shadow)
  | Aspects.Pointcut.Execution _, (Joinpoint.Sh_call _ | Joinpoint.Sh_field_set _)
  | Aspects.Pointcut.Call _, (Joinpoint.Sh_execution _ | Joinpoint.Sh_field_set _)
  | Aspects.Pointcut.Set_field _, (Joinpoint.Sh_execution _ | Joinpoint.Sh_call _)
    ->
      false
