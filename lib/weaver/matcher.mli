(** Matching pointcuts against join-point shadows. *)

val matches : Aspects.Pointcut.t -> Joinpoint.shadow -> bool
(** Kinded pointcuts ([execution], [call], [set]) only match shadows of
    their kind; [within] matches any shadow by enclosing class.

    A [call] shadow whose receiver class could not be statically resolved
    matches *optimistically*: the receiver could be any class at runtime,
    so the class pattern never excludes it and only the method pattern
    filters — [call(Acc*.deposit)] matches an unresolved-receiver call to
    [deposit]. (Earlier versions special-cased the literal ["*"] class
    pattern and silently dropped every other pattern at unresolved
    receivers.) Combine with [within(...)] to narrow where an optimistic
    match is too broad. Calls with a resolved receiver match the class
    pattern against that class, as before.

    Production dispatch: a closure-compiled decider (cached per pointcut,
    per domain) unless the {!Vm} ablation flag routes back to
    {!matches_tree}. Staged: [matches pc] performs the cache lookup once
    and returns the decider closure, so partially apply it outside loops
    over shadows. *)

val matches_tree : Aspects.Pointcut.t -> Joinpoint.shadow -> bool
(** The tree-walking baseline: same semantics as {!matches}, bypassing
    decider compilation and the cache. The [vm] oracle's reference arm. *)

val decider : Aspects.Pointcut.t -> Joinpoint.shadow -> bool
(** The compiled decider for [pc] (compiling and caching on first use):
    pattern-specialized closures — literal, ["*"], prefix, suffix and
    infix patterns skip the generic wildcard DP. Counters:
    [vm.compile.matcher] on compile, [vm.exec.matcher.*] per node. *)

val kinds : Aspects.Pointcut.t -> bool * bool
(** [(wants_exec, wants_stmt)]: which shadow domains advice on this
    pointcut applies to. Execution advice weaves at execution shadows,
    statement advice wraps statements at call/set shadows; a pure
    [within] pointcut wants neither (it constrains, it does not select),
    so advice gated on it is inert. The weaver, the joinpoint index and
    the interference analysis all share this gate. *)
