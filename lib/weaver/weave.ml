type application = {
  aspect_name : string;
  advice_name : string;
  at : string;
}

type result = {
  program : Code.Junit.program;
  applications : application list;
}

(* Substitute the pseudo-variables of advice bodies for a concrete shadow. *)
let instantiate_body shadow stmts =
  let rewrite_names e =
    let rec walk e =
      match e with
      | Code.Jexpr.E_name "thisJoinPoint" ->
          Code.Jexpr.E_string (Joinpoint.describe shadow)
      | Code.Jexpr.E_name "targetName" ->
          Code.Jexpr.E_string (Joinpoint.enclosing_class shadow)
      | Code.Jexpr.E_null | Code.Jexpr.E_this | Code.Jexpr.E_bool _
      | Code.Jexpr.E_int _ | Code.Jexpr.E_double _ | Code.Jexpr.E_string _
      | Code.Jexpr.E_name _ ->
          e
      | Code.Jexpr.E_field (r, f) -> Code.Jexpr.E_field (walk r, f)
      | Code.Jexpr.E_call (r, m, args) ->
          Code.Jexpr.E_call (Option.map walk r, m, List.map walk args)
      | Code.Jexpr.E_new (c, args) -> Code.Jexpr.E_new (c, List.map walk args)
      | Code.Jexpr.E_binary (op, a, b) -> Code.Jexpr.E_binary (op, walk a, walk b)
      | Code.Jexpr.E_unary (op, a) -> Code.Jexpr.E_unary (op, walk a)
      | Code.Jexpr.E_assign (l, r) -> Code.Jexpr.E_assign (walk l, walk r)
      | Code.Jexpr.E_cast (t, a) -> Code.Jexpr.E_cast (t, walk a)
      | Code.Jexpr.E_instanceof (a, c) -> Code.Jexpr.E_instanceof (walk a, c)
    in
    walk e
  in
  List.map (Code.Jstmt.map_expr rewrite_names) stmts

(* Replace the statement containing the proceed() marker by the original
   body (wrapped in a block). *)
let rec splice_proceed original stmts =
  List.concat_map
    (fun stmt ->
      let is_marker =
        match stmt with
        | Code.Jstmt.S_expr (Code.Jexpr.E_call (None, "proceed", [])) -> true
        | _ -> false
      in
      if is_marker then [ Code.Jstmt.S_block original ]
      else
        match stmt with
        | Code.Jstmt.S_if (c, t, f) ->
            [ Code.Jstmt.S_if (c, splice_proceed original t, splice_proceed original f) ]
        | Code.Jstmt.S_while (c, b) ->
            [ Code.Jstmt.S_while (c, splice_proceed original b) ]
        | Code.Jstmt.S_try (b, catches, fin) ->
            [
              Code.Jstmt.S_try
                ( splice_proceed original b,
                  List.map
                    (fun (t, n, stmts) -> (t, n, splice_proceed original stmts))
                    catches,
                  splice_proceed original fin );
            ]
        | Code.Jstmt.S_sync (e, b) ->
            [ Code.Jstmt.S_sync (e, splice_proceed original b) ]
        | Code.Jstmt.S_block b -> [ Code.Jstmt.S_block (splice_proceed original b) ]
        | stmt -> [ stmt ])
    stmts

(* Weave one piece of execution advice into a method body. *)
let weave_execution_advice (a : Aspects.Advice.t) shadow body =
  let advice_body = instantiate_body shadow a.Aspects.Advice.body in
  match a.Aspects.Advice.time with
  | Aspects.Advice.Before -> advice_body @ body
  | Aspects.Advice.After -> [ Code.Jstmt.S_try (body, [], advice_body) ]
  | Aspects.Advice.After_returning -> (
      match List.rev body with
      | Code.Jstmt.S_return _ as ret :: prefix ->
          List.rev prefix @ advice_body @ [ ret ]
      | _ -> body @ advice_body)
  | Aspects.Advice.Around -> splice_proceed body advice_body

(* --- receiver-type resolution for call/set shadows ------------------- *)

type scope = {
  current_class : string;
  var_types : (string * string) list;  (* variable -> class name, when known *)
}

let class_of_jtype = function
  | Code.Jtype.T_named n -> Some n
  | _ -> None

let scope_of_method (c : Code.Jdecl.class_) (m : Code.Jdecl.method_) =
  let param_types =
    List.filter_map
      (fun (p : Code.Jdecl.param) ->
        Option.map
          (fun cls -> (p.Code.Jdecl.param_name, cls))
          (class_of_jtype p.Code.Jdecl.param_type))
      m.Code.Jdecl.params
  in
  let field_types =
    List.filter_map
      (fun (f : Code.Jdecl.field) ->
        Option.map
          (fun cls -> (f.Code.Jdecl.field_name, cls))
          (class_of_jtype f.Code.Jdecl.field_type))
      c.Code.Jdecl.fields
  in
  let local_types =
    match m.Code.Jdecl.body with
    | None -> []
    | Some body ->
        let rec collect acc stmts =
          List.fold_left
            (fun acc stmt ->
              match stmt with
              | Code.Jstmt.S_local (t, name, _) -> (
                  match class_of_jtype t with
                  | Some cls -> (name, cls) :: acc
                  | None -> acc)
              | Code.Jstmt.S_if (_, a, b) -> collect (collect acc a) b
              | Code.Jstmt.S_while (_, b)
              | Code.Jstmt.S_sync (_, b)
              | Code.Jstmt.S_block b ->
                  collect acc b
              | Code.Jstmt.S_try (b, catches, fin) ->
                  let acc = collect acc b in
                  let acc =
                    List.fold_left
                      (fun acc (_, _, stmts) -> collect acc stmts)
                      acc catches
                  in
                  collect acc fin
              | Code.Jstmt.S_expr _ | Code.Jstmt.S_return _
              | Code.Jstmt.S_throw _ | Code.Jstmt.S_comment _ ->
                  acc)
            acc stmts
        in
        collect [] body
  in
  {
    current_class = c.Code.Jdecl.class_name;
    var_types = param_types @ field_types @ local_types;
  }

let receiver_class scope = function
  | None -> Some scope.current_class (* unqualified call *)
  | Some Code.Jexpr.E_this -> Some scope.current_class
  | Some (Code.Jexpr.E_name v) -> List.assoc_opt v scope.var_types
  | Some (Code.Jexpr.E_field (Code.Jexpr.E_this, f)) ->
      List.assoc_opt f scope.var_types
  | Some (Code.Jexpr.E_new (c, _)) -> Some c
  | Some (Code.Jexpr.E_cast (t, _)) -> class_of_jtype t
  | Some _ -> None

(* Call shadows occurring anywhere inside an expression. *)
let call_shadows_in_expr scope ~within_method e =
  Code.Jexpr.fold_calls
    (fun acc (recv, name, _) ->
      if String.equal name "proceed" && recv = None then acc
      else
        Joinpoint.Sh_call
          {
            within_class = scope.current_class;
            within_method;
            receiver_class = receiver_class scope recv;
            method_name = name;
          }
        :: acc)
    [] e

let field_set_shadows_in_expr scope ~within_method e =
  let rec walk acc e =
    match e with
    | Code.Jexpr.E_assign (lhs, rhs) ->
        let acc = walk acc rhs in
        let target =
          match lhs with
          | Code.Jexpr.E_field (Code.Jexpr.E_this, f) ->
              Some (scope.current_class, f)
          | Code.Jexpr.E_field (Code.Jexpr.E_name v, f) ->
              Option.map (fun cls -> (cls, f)) (List.assoc_opt v scope.var_types)
          | _ -> None
        in
        (match target with
        | Some (target_class, field_name) ->
            Joinpoint.Sh_field_set
              {
                within_class = scope.current_class;
                within_method;
                target_class;
                field_name;
              }
            :: acc
        | None -> acc)
    | Code.Jexpr.E_null | Code.Jexpr.E_this | Code.Jexpr.E_bool _
    | Code.Jexpr.E_int _ | Code.Jexpr.E_double _ | Code.Jexpr.E_string _
    | Code.Jexpr.E_name _ ->
        acc
    | Code.Jexpr.E_field (r, _) -> walk acc r
    | Code.Jexpr.E_call (r, _, args) ->
        let acc = match r with Some r -> walk acc r | None -> acc in
        List.fold_left walk acc args
    | Code.Jexpr.E_new (_, args) -> List.fold_left walk acc args
    | Code.Jexpr.E_binary (_, a, b) -> walk (walk acc a) b
    | Code.Jexpr.E_unary (_, a) -> walk acc a
    | Code.Jexpr.E_cast (_, a) -> walk acc a
    | Code.Jexpr.E_instanceof (a, _) -> walk acc a
  in
  walk [] e

(* Wrap individual statements that contain matching call/set shadows. *)
let weave_statement_advice (a : Aspects.Advice.t) scope ~within_method record body
    =
  let rec rewrite stmts =
    List.map
      (fun stmt ->
        let nested =
          match stmt with
          | Code.Jstmt.S_if (c, t, f) -> Code.Jstmt.S_if (c, rewrite t, rewrite f)
          | Code.Jstmt.S_while (c, b) -> Code.Jstmt.S_while (c, rewrite b)
          | Code.Jstmt.S_try (b, catches, fin) ->
              Code.Jstmt.S_try
                ( rewrite b,
                  List.map (fun (t, n, s) -> (t, n, rewrite s)) catches,
                  rewrite fin )
          | Code.Jstmt.S_sync (e, b) -> Code.Jstmt.S_sync (e, rewrite b)
          | Code.Jstmt.S_block b -> Code.Jstmt.S_block (rewrite b)
          | stmt -> stmt
        in
        (* only direct expressions of this statement, not nested ones —
           nested statements were handled by the recursion above *)
        let direct_exprs =
          match nested with
          | Code.Jstmt.S_expr e -> [ e ]
          | Code.Jstmt.S_local (_, _, Some e) -> [ e ]
          | Code.Jstmt.S_return (Some e) -> [ e ]
          | Code.Jstmt.S_if (c, _, _) -> [ c ]
          | Code.Jstmt.S_while (c, _) -> [ c ]
          | Code.Jstmt.S_throw e -> [ e ]
          | Code.Jstmt.S_sync (e, _) -> [ e ]
          | _ -> []
        in
        let shadows =
          List.concat_map
            (fun e ->
              call_shadows_in_expr scope ~within_method e
              @ field_set_shadows_in_expr scope ~within_method e)
            direct_exprs
        in
        let matching =
          List.filter (Matcher.matches a.Aspects.Advice.pointcut) shadows
        in
        match matching with
        | [] -> nested
        | shadow :: _ ->
            record shadow;
            let advice_body = instantiate_body shadow a.Aspects.Advice.body in
            (match a.Aspects.Advice.time with
            | Aspects.Advice.Before ->
                Code.Jstmt.S_block (advice_body @ [ nested ])
            | Aspects.Advice.After | Aspects.Advice.After_returning ->
                Code.Jstmt.S_block ([ nested ] @ advice_body)
            | Aspects.Advice.Around ->
                Code.Jstmt.S_block (splice_proceed [ nested ] advice_body)))
      stmts
  in
  rewrite body

let is_execution_advice (a : Aspects.Advice.t) =
  let rec kinds = function
    | Aspects.Pointcut.Execution _ -> (true, false)
    | Aspects.Pointcut.Call _ | Aspects.Pointcut.Set_field _ -> (false, true)
    | Aspects.Pointcut.Within _ -> (false, false)
    | Aspects.Pointcut.And (x, y) | Aspects.Pointcut.Or (x, y) ->
        let ex, st = kinds x and ey, sy = kinds y in
        (ex || ey, st || sy)
    | Aspects.Pointcut.Not x -> kinds x
  in
  kinds a.Aspects.Advice.pointcut

(* One traversal of the program applies every inter-type declaration to each
   class it reaches (declaration order preserved per class), instead of one
   full rebuild of the program per declaration. *)
let apply_intertypes (aspect : Aspects.Aspect.t) program =
  match aspect.Aspects.Aspect.intertypes with
  | [] -> program
  | intertypes ->
      let apply_to_class c it =
        match it with
        | Aspects.Aspect.It_field (pattern, field) ->
            if Aspects.Pattern.matches pattern c.Code.Jdecl.class_name then
              Code.Jdecl.add_field field c
            else c
        | Aspects.Aspect.It_method (pattern, m) ->
            if Aspects.Pattern.matches pattern c.Code.Jdecl.class_name then
              Code.Jdecl.add_method m c
            else c
      in
      Code.Junit.map_classes
        (fun c -> List.fold_left apply_to_class c intertypes)
        program

let weave_one (aspect : Aspects.Aspect.t) program =
  let applications = ref [] in
  let record advice_name shadow =
    Obs.incr "weave.joinpoint.match" [];
    applications :=
      {
        aspect_name = aspect.Aspects.Aspect.aspect_name;
        advice_name;
        at = Joinpoint.describe shadow;
      }
      :: !applications
  in
  let program = apply_intertypes aspect program in
  let weave_class (c : Code.Jdecl.class_) =
    Code.Jdecl.map_methods
      (fun m ->
        match m.Code.Jdecl.body with
        | None -> m
        | Some body ->
            let scope = scope_of_method c m in
            let within_method = m.Code.Jdecl.method_name in
            let exec_shadow =
              Joinpoint.Sh_execution
                {
                  class_name = c.Code.Jdecl.class_name;
                  method_name = m.Code.Jdecl.method_name;
                }
            in
            let body =
              List.fold_left
                (fun body (a : Aspects.Advice.t) ->
                  let wants_exec, wants_stmt = is_execution_advice a in
                  let body =
                    if wants_stmt then
                      weave_statement_advice a scope ~within_method
                        (record a.Aspects.Advice.advice_name)
                        body
                    else body
                  in
                  if
                    wants_exec
                    && Matcher.matches a.Aspects.Advice.pointcut exec_shadow
                  then begin
                    record a.Aspects.Advice.advice_name exec_shadow;
                    weave_execution_advice a exec_shadow body
                  end
                  else body)
                body aspect.Aspects.Aspect.advices
            in
            { m with Code.Jdecl.body = Some body })
      c
  in
  let program = Code.Junit.map_classes weave_class program in
  { program; applications = List.rev !applications }

let weave generated program =
  Obs.span ~cat:"weaver" "weave"
    ~args:[ ("aspects", Obs.Event.V_int (List.length generated)) ]
  @@ fun () ->
  (* reverse precedence order: the last-woven (highest-precedence) aspect
     ends up outermost at shared join points *)
  let ordered = List.rev (Precedence.order generated) in
  if Obs.enabled () then
    (* the precedence decision, as one structured event: position in the
       model-level transformation order -> aspect woven at that rank *)
    Obs.event ~cat:"weaver" "weave.precedence"
      ~args:
        (List.mapi
           (fun i (g : Aspects.Generator.generated) ->
             ( string_of_int (i + 1),
               Obs.Event.V_string
                 g.Aspects.Generator.aspect.Aspects.Aspect.aspect_name ))
           (Precedence.order generated));
  List.fold_left
    (fun acc (g : Aspects.Generator.generated) ->
      let r =
        Obs.span ~cat:"weaver" "weave.aspect"
          ~args:
            [
              ( "aspect",
                Obs.Event.V_string
                  g.Aspects.Generator.aspect.Aspects.Aspect.aspect_name );
            ]
        @@ fun () -> weave_one g.Aspects.Generator.aspect acc.program
      in
      Obs.incr "weave.applications" []
        ~by:(float_of_int (List.length r.applications));
      { program = r.program; applications = acc.applications @ r.applications })
    { program; applications = [] }
    ordered
