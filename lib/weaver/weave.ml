module Sm = Map.Make (String)

type application = {
  aspect_name : string;
  advice_name : string;
  at : string;
}

type result = {
  program : Code.Junit.program;
  applications : application list;
}

(* Substitute the pseudo-variables of advice bodies for a concrete shadow. *)
let instantiate_body shadow stmts =
  let rewrite_names e =
    let rec walk e =
      match e with
      | Code.Jexpr.E_name "thisJoinPoint" ->
          Code.Jexpr.E_string (Joinpoint.describe shadow)
      | Code.Jexpr.E_name "targetName" ->
          Code.Jexpr.E_string (Joinpoint.enclosing_class shadow)
      | Code.Jexpr.E_null | Code.Jexpr.E_this | Code.Jexpr.E_bool _
      | Code.Jexpr.E_int _ | Code.Jexpr.E_double _ | Code.Jexpr.E_string _
      | Code.Jexpr.E_name _ ->
          e
      | Code.Jexpr.E_field (r, f) -> Code.Jexpr.E_field (walk r, f)
      | Code.Jexpr.E_call (r, m, args) ->
          Code.Jexpr.E_call (Option.map walk r, m, List.map walk args)
      | Code.Jexpr.E_new (c, args) -> Code.Jexpr.E_new (c, List.map walk args)
      | Code.Jexpr.E_binary (op, a, b) -> Code.Jexpr.E_binary (op, walk a, walk b)
      | Code.Jexpr.E_unary (op, a) -> Code.Jexpr.E_unary (op, walk a)
      | Code.Jexpr.E_assign (l, r) -> Code.Jexpr.E_assign (walk l, walk r)
      | Code.Jexpr.E_cast (t, a) -> Code.Jexpr.E_cast (t, walk a)
      | Code.Jexpr.E_instanceof (a, c) -> Code.Jexpr.E_instanceof (walk a, c)
    in
    walk e
  in
  List.map (Code.Jstmt.map_expr rewrite_names) stmts

(* Replace the statement containing the proceed() marker by the original
   body (wrapped in a block). *)
let rec splice_proceed original stmts =
  List.concat_map
    (fun stmt ->
      let is_marker =
        match stmt with
        | Code.Jstmt.S_expr (Code.Jexpr.E_call (None, "proceed", [])) -> true
        | _ -> false
      in
      if is_marker then [ Code.Jstmt.S_block original ]
      else
        match stmt with
        | Code.Jstmt.S_if (c, t, f) ->
            [ Code.Jstmt.S_if (c, splice_proceed original t, splice_proceed original f) ]
        | Code.Jstmt.S_while (c, b) ->
            [ Code.Jstmt.S_while (c, splice_proceed original b) ]
        | Code.Jstmt.S_try (b, catches, fin) ->
            [
              Code.Jstmt.S_try
                ( splice_proceed original b,
                  List.map
                    (fun (t, n, stmts) -> (t, n, splice_proceed original stmts))
                    catches,
                  splice_proceed original fin );
            ]
        | Code.Jstmt.S_sync (e, b) ->
            [ Code.Jstmt.S_sync (e, splice_proceed original b) ]
        | Code.Jstmt.S_block b -> [ Code.Jstmt.S_block (splice_proceed original b) ]
        | stmt -> [ stmt ])
    stmts

(* Weave one piece of execution advice into a method body. *)
let weave_execution_advice (a : Aspects.Advice.t) shadow body =
  let advice_body = instantiate_body shadow a.Aspects.Advice.body in
  match a.Aspects.Advice.time with
  | Aspects.Advice.Before -> advice_body @ body
  | Aspects.Advice.After -> [ Code.Jstmt.S_try (body, [], advice_body) ]
  | Aspects.Advice.After_returning -> (
      match List.rev body with
      | Code.Jstmt.S_return _ as ret :: prefix ->
          List.rev prefix @ advice_body @ [ ret ]
      | _ -> body @ advice_body)
  | Aspects.Advice.Around -> splice_proceed body advice_body

(* Wrap individual statements that contain matching call/set shadows.
   [decide] is the staged [Matcher.matches a.pointcut] — resolved once per
   (class, advice) by the caller so the rewrite recursion below never pays
   the decider-cache lookup per statement group. *)
let weave_statement_advice (a : Aspects.Advice.t) decide scope ~within_method
    record body =
  let rec rewrite stmts =
    List.map
      (fun stmt ->
        let nested =
          match stmt with
          | Code.Jstmt.S_if (c, t, f) -> Code.Jstmt.S_if (c, rewrite t, rewrite f)
          | Code.Jstmt.S_while (c, b) -> Code.Jstmt.S_while (c, rewrite b)
          | Code.Jstmt.S_try (b, catches, fin) ->
              Code.Jstmt.S_try
                ( rewrite b,
                  List.map (fun (t, n, s) -> (t, n, rewrite s)) catches,
                  rewrite fin )
          | Code.Jstmt.S_sync (e, b) -> Code.Jstmt.S_sync (e, rewrite b)
          | Code.Jstmt.S_block b -> Code.Jstmt.S_block (rewrite b)
          | stmt -> stmt
        in
        (* only direct expressions of this statement, not nested ones —
           nested statements were handled by the recursion above *)
        let shadows = Joinpoint.statement_shadows scope ~within_method nested in
        let matching = List.filter decide shadows in
        match matching with
        | [] -> nested
        | shadow :: _ ->
            record shadow;
            let advice_body = instantiate_body shadow a.Aspects.Advice.body in
            (match a.Aspects.Advice.time with
            | Aspects.Advice.Before ->
                Code.Jstmt.S_block (advice_body @ [ nested ])
            | Aspects.Advice.After | Aspects.Advice.After_returning ->
                Code.Jstmt.S_block ([ nested ] @ advice_body)
            | Aspects.Advice.Around ->
                Code.Jstmt.S_block (splice_proceed [ nested ] advice_body)))
      stmts
  in
  rewrite body

let is_execution_advice (a : Aspects.Advice.t) =
  Matcher.kinds a.Aspects.Advice.pointcut

(* Apply every inter-type declaration of an aspect to one class
   (declaration order preserved). Returns the class physically unchanged
   when nothing applied. *)
let apply_intertypes_to_class intertypes (c : Code.Jdecl.class_) =
  List.fold_left
    (fun c it ->
      match it with
      | Aspects.Aspect.It_field (pattern, field) ->
          if Aspects.Pattern.matches pattern c.Code.Jdecl.class_name then
            Code.Jdecl.add_field field c
          else c
      | Aspects.Aspect.It_method (pattern, m) ->
          if Aspects.Pattern.matches pattern c.Code.Jdecl.class_name then
            Code.Jdecl.add_method m c
          else c)
    c intertypes

(* One traversal of the program applies every inter-type declaration to each
   class it reaches, instead of one full rebuild of the program per
   declaration. *)
let apply_intertypes (aspect : Aspects.Aspect.t) program =
  match aspect.Aspects.Aspect.intertypes with
  | [] -> program
  | intertypes ->
      Code.Junit.map_classes (apply_intertypes_to_class intertypes) program

(* Weave one aspect's advice into one class; [record] receives each advice
   application. The scope of a method only reads the class itself, so
   per-class weaving is a pure function of (class, aspect). *)
let weave_class_with (aspect : Aspects.Aspect.t) record (c : Code.Jdecl.class_)
    =
  (* Stage each advice's decider once per class: [Matcher.matches pc] pays
     the decider-cache lookup (a structural hash of the pointcut AST) at
     partial application, so resolving it here keeps the per-method and
     per-statement loops below lookup-free. *)
  let advices =
    List.map
      (fun (a : Aspects.Advice.t) ->
        let wants_exec, wants_stmt = is_execution_advice a in
        (a, wants_exec, wants_stmt, Matcher.matches a.Aspects.Advice.pointcut))
      aspect.Aspects.Aspect.advices
  in
  Code.Jdecl.map_methods
    (fun m ->
      match m.Code.Jdecl.body with
      | None -> m
      | Some body ->
          let scope = Joinpoint.scope_of_method c m in
          let within_method = m.Code.Jdecl.method_name in
          let exec_shadow =
            Joinpoint.Sh_execution
              {
                class_name = c.Code.Jdecl.class_name;
                method_name = m.Code.Jdecl.method_name;
              }
          in
          let body =
            List.fold_left
              (fun body ((a : Aspects.Advice.t), wants_exec, wants_stmt, decide)
                 ->
                let body =
                  if wants_stmt then
                    weave_statement_advice a decide scope ~within_method
                      (record a.Aspects.Advice.advice_name)
                      body
                  else body
                in
                if wants_exec && decide exec_shadow then begin
                  record a.Aspects.Advice.advice_name exec_shadow;
                  weave_execution_advice a exec_shadow body
                end
                else body)
              body advices
          in
          { m with Code.Jdecl.body = Some body })
    c

let weave_one (aspect : Aspects.Aspect.t) program =
  let applications = ref [] in
  let record advice_name shadow =
    Obs.incr "weave.joinpoint.match" [];
    applications :=
      {
        aspect_name = aspect.Aspects.Aspect.aspect_name;
        advice_name;
        at = Joinpoint.describe shadow;
      }
      :: !applications
  in
  let program = apply_intertypes aspect program in
  let program =
    Code.Junit.map_classes (weave_class_with aspect record) program
  in
  { program; applications = List.rev !applications }

(* The pre-index weaver, kept as the differential baseline (like
   [Repository.Naive]): one full program traversal per aspect, every
   advice tested against every shadow. The [weave] oracle pins
   [weave ≡ weave_scan ≡ fold of weave_one]. *)
let weave_scan generated program =
  List.fold_left
    (fun acc (g : Aspects.Generator.generated) ->
      let r = weave_one g.Aspects.Generator.aspect acc.program in
      { program = r.program; applications = acc.applications @ r.applications })
    { program; applications = [] }
    (List.rev (Precedence.order generated))

(* --- the indexed, class-major weaver --------------------------------- *)

(* Weave the whole ordered aspect chain into one class. The per-class
   joinpoint index answers "can this aspect apply here at all" — when it
   cannot, the class is not traversed for that aspect. The execution table
   survives advice weaving (statement rewrites never add or remove
   methods); only inter-type declarations invalidate it. Returns the woven
   class and the applications per aspect position. *)
let weave_class_chain (ordered : Aspects.Aspect.t array)
    (c0 : Code.Jdecl.class_) =
  let n = Array.length ordered in
  let apps = Array.make n [] in
  let c = ref c0 in
  let exec_ix = ref None in
  let stmt_ix = ref None in
  let exec_index () =
    match !exec_ix with
    | Some ix -> ix
    | None ->
        let ix = Index.exec_index_of_class !c in
        exec_ix := Some ix;
        ix
  in
  let stmt_index () =
    match !stmt_ix with
    | Some ix -> ix
    | None ->
        let ix = Index.stmt_index_of_class !c in
        stmt_ix := Some ix;
        ix
  in
  for i = 0 to n - 1 do
    let aspect = ordered.(i) in
    (match aspect.Aspects.Aspect.intertypes with
    | [] -> ()
    | intertypes ->
        let c' = apply_intertypes_to_class intertypes !c in
        if c' != !c then begin
          c := c';
          exec_ix := None;
          stmt_ix := None
        end);
    let touches =
      List.exists
        (fun (a : Aspects.Advice.t) ->
          let wants_exec, wants_stmt = is_execution_advice a in
          (wants_exec
          && Index.exec_touches (exec_index ()) a.Aspects.Advice.pointcut)
          || wants_stmt
             && Index.stmt_touches (stmt_index ()) a.Aspects.Advice.pointcut)
        aspect.Aspects.Aspect.advices
    in
    if touches then begin
      let recorded = ref [] in
      let record advice_name shadow =
        Obs.incr "weave.joinpoint.match" [];
        recorded :=
          {
            aspect_name = aspect.Aspects.Aspect.aspect_name;
            advice_name;
            at = Joinpoint.describe shadow;
          }
          :: !recorded
      in
      c := weave_class_with aspect record !c;
      apps.(i) <- List.rev !recorded;
      (* statement rewrites invalidate the call/set tables only *)
      stmt_ix := None
    end
  done;
  (!c, apps)

type cached = {
  src : Code.Jdecl.class_;  (* the class as it was before weaving *)
  woven : Code.Jdecl.class_;
  apps : application list array;  (* per aspect position *)
}

let class_equal a b =
  a == b || Code.Jdecl.equal_type_decl (Code.Jdecl.Class a) (Code.Jdecl.Class b)

let ordered_aspects generated =
  Array.of_list
    (List.map
       (fun (g : Aspects.Generator.generated) -> g.Aspects.Generator.aspect)
       (List.rev (Precedence.order generated)))

let emit_precedence generated =
  if Obs.enabled () then
    (* the precedence decision, as one structured event: position in the
       model-level transformation order -> aspect woven at that rank *)
    Obs.event ~cat:"weaver" "weave.precedence"
      ~args:
        (List.mapi
           (fun i (g : Aspects.Generator.generated) ->
             ( string_of_int (i + 1),
               Obs.Event.V_string
                 g.Aspects.Generator.aspect.Aspects.Aspect.aspect_name ))
           (Precedence.order generated))

(* Weave every class of a program through the aspect chain, consulting
   [lookup] for a cached result first. Applications are reassembled
   aspect-major (aspect, then class, then method — the order the
   aspect-major baseline reports them in). *)
let weave_classes (ordered : Aspects.Aspect.t array) ~lookup program =
  let n = Array.length ordered in
  let per_aspect = Array.make n [] in
  let cache = ref Sm.empty in
  let program' =
    Code.Junit.map_classes
      (fun c ->
        let entry =
          match lookup c with
          | Some e -> e
          | None ->
              let woven, apps = weave_class_chain ordered c in
              { src = c; woven; apps }
        in
        cache :=
          Sm.update entry.src.Code.Jdecl.class_name
            (function Some l -> Some (entry :: l) | None -> Some [ entry ])
            !cache;
        for i = 0 to n - 1 do
          match entry.apps.(i) with
          | [] -> ()
          | l -> per_aspect.(i) <- l :: per_aspect.(i)
        done;
        entry.woven)
      program
  in
  let applications =
    List.concat
      (List.init n (fun i ->
           let apps = List.concat (List.rev per_aspect.(i)) in
           Obs.incr "weave.applications" []
             ~by:(float_of_int (List.length apps));
           apps))
  in
  ({ program = program'; applications }, !cache)

let weave generated program =
  Obs.span ~cat:"weaver" "weave"
    ~args:[ ("aspects", Obs.Event.V_int (List.length generated)) ]
  @@ fun () ->
  emit_precedence generated;
  let ordered = ordered_aspects generated in
  fst (weave_classes ordered ~lookup:(fun _ -> None) program)

(* --- incremental re-weave -------------------------------------------- *)

type state = {
  generated : Aspects.Generator.generated list;
  ordered : Aspects.Aspect.t array;
  cache : cached list Sm.t;  (* by class name; lists cover duplicates *)
  last : result;
}

let initial generated program =
  Obs.span ~cat:"weaver" "weave"
    ~args:[ ("aspects", Obs.Event.V_int (List.length generated)) ]
  @@ fun () ->
  emit_precedence generated;
  let ordered = ordered_aspects generated in
  let last, cache = weave_classes ordered ~lookup:(fun _ -> None) program in
  { generated; ordered; cache; last }

let result_of st = st.last

let reweave st program =
  Obs.span ~cat:"weaver" "weave.reweave"
    ~args:[ ("aspects", Obs.Event.V_int (List.length st.generated)) ]
  @@ fun () ->
  let lookup (c : Code.Jdecl.class_) =
    let hit =
      match Sm.find_opt c.Code.Jdecl.class_name st.cache with
      | None -> None
      | Some entries -> List.find_opt (fun e -> class_equal e.src c) entries
    in
    (match hit with
    | Some _ -> Obs.incr "weave.inc.skipped" []
    | None -> Obs.incr "weave.inc.rewoven" []);
    hit
  in
  let last, cache = weave_classes st.ordered ~lookup program in
  { st with cache; last }
