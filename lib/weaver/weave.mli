(** The static weaver: applies concrete aspects to a program.

    Weaving proceeds per aspect in *reverse* precedence order, so that the
    highest-precedence aspect (the concern whose transformation was applied
    first) wraps all others at shared join points:
    - inter-type fields and methods are added to matching classes;
    - [before] execution advice is prepended to the method body;
    - [after] execution advice is woven as [try { body } finally { advice }];
    - [after returning] advice is inserted before the trailing [return] (or
      appended when the body does not end in a return);
    - [around] execution advice replaces the body by the advice body with
      the [proceed()] marker statement replaced by the original body;
    - [call] and [set] advice wraps the innermost statement containing a
      matching shadow with before/after statements.

    Advice bodies may use two pseudo-variables, rewritten at each woven
    shadow: [thisJoinPoint] becomes a string literal describing the join
    point and [targetName] the enclosing class name.

    {!weave} resolves pointcuts against the per-class joinpoint index
    ({!Index}) and weaves class-major: each class runs the full aspect
    chain, skipping aspects the index proves cannot apply. Because a
    method's weave only reads its own class, this produces the same
    program and the same application list as the aspect-major full scan,
    which is kept as {!weave_scan} — the differential baseline pinned by
    the [weave] fuzz oracle.

    {!initial}/{!reweave} keep weaving incremental across model edits: the
    {!state} caches, per class, the source declaration, its woven form and
    its applications. The cached source declaration is the watermark — on
    re-weave, a class whose declaration is unchanged (physically, the O(1)
    fast path when the editor shares untouched declarations, or
    structurally) reuses its cached result; only changed, added or renamed
    classes are re-woven. The [weave-inc] oracle pins
    [reweave ≡ full weave] across random edit scripts. *)

(** One advice application, for reports. *)
type application = {
  aspect_name : string;
  advice_name : string;
  at : string;  (** shadow description *)
}

type result = {
  program : Code.Junit.program;
  applications : application list;  (** weave order *)
}

val weave_one : Aspects.Aspect.t -> Code.Junit.program -> result
(** Weaves a single aspect (full scan). *)

val weave :
  Aspects.Generator.generated list -> Code.Junit.program -> result
(** Orders the generated aspects by precedence and weaves them all,
    index-driven. *)

val weave_scan :
  Aspects.Generator.generated list -> Code.Junit.program -> result
(** The pre-index baseline: a fold of {!weave_one} over the ordered
    aspects, one full program traversal each. Semantically identical to
    {!weave}; kept for the differential oracle and the bench ablation
    arm. *)

(** {1 Incremental re-weave} *)

type state
(** A woven program plus the per-class cache that makes the next weave
    incremental. *)

val initial :
  Aspects.Generator.generated list -> Code.Junit.program -> state
(** Full weave, retaining the cache. *)

val result_of : state -> result

val reweave : state -> Code.Junit.program -> state
(** Re-weave after a model edit: classes whose source declaration still
    equals the cached one ([weave.inc.skipped]) reuse their woven form and
    applications; the rest ([weave.inc.rewoven]) run the aspect chain
    again. Equivalent to [initial st.generated program] for any program. *)
