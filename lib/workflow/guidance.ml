let next_options = State.options

let describe p =
  let done_lines =
    List.map
      (fun (step, concern) -> Printf.sprintf "  [x] %s: %s" step concern)
      (State.completed p)
  in
  let current =
    match State.current_step p with
    | Some s ->
        [
          Printf.sprintf "  [ ] %s: choose one of %s%s" s.State.step_name
            (String.concat ", " s.State.choices)
            (if s.State.optional then " (optional)" else "");
        ]
    | None -> [ "  workflow complete" ]
  in
  let remaining = State.remaining_concerns p in
  String.concat "\n"
    (("refinement progress:" :: done_lines)
    @ current
    @ [ "  remaining concerns: " ^ String.concat ", " remaining ])

(* The workflow fixes concern order; the interference analysis says where
   that order is load-bearing. This lives here (not in the CLI) so any
   guidance front-end renders verdicts the same way — but the workflow
   library doesn't depend on the weaver, so the caller hands over plain
   data extracted from Weaver.Interference.report. *)
type interference_pair = {
  pair_left : string;
  pair_right : string;
  pair_conflict : string option;  (** conflict reason when order matters *)
}

let interference_brief pairs =
  match pairs with
  | [] ->
      "aspect interference: no advised aspect pairs — any concern order is \
       safe"
  | _ ->
      let conflicts =
        List.length (List.filter (fun p -> p.pair_conflict <> None) pairs)
      in
      let header =
        Printf.sprintf "aspect interference: %d pair(s), %d order-sensitive"
          (List.length pairs) conflicts
      in
      let lines =
        List.map
          (fun p ->
            match p.pair_conflict with
            | None ->
                Printf.sprintf "  [ok] %s ~ %s: weave order unobservable"
                  p.pair_left p.pair_right
            | Some reason ->
                Printf.sprintf "  [!!] %s ~ %s: %s (workflow order is \
                                load-bearing)"
                  p.pair_left p.pair_right reason)
          pairs
      in
      String.concat "\n" (header :: lines)

let consistent_with_trace p trace =
  let from_workflow = State.applied_concerns p in
  let from_trace =
    List.map
      (fun (e : Transform.Trace.entry) -> e.Transform.Trace.concern)
      (Transform.Trace.entries trace)
  in
  List.equal String.equal from_workflow from_trace
