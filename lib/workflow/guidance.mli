(** Developer guidance over a workflow in progress. *)

val next_options : State.progress -> string list
(** Concerns applicable right now (current step, plus later steps reachable
    through optional ones). *)

val describe : State.progress -> string
(** Multi-line status: completed steps, current options, remaining
    concerns. *)

(** One analysed aspect pair, as plain data: the workflow library doesn't
    depend on the weaver, so callers project Weaver.Interference pairs
    into this. [pair_conflict] carries the conflict reason when weave
    order matters, [None] when the pair provably commutes. *)
type interference_pair = {
  pair_left : string;
  pair_right : string;
  pair_conflict : string option;
}

val interference_brief : interference_pair list -> string
(** Render interference verdicts as workflow guidance: which concern
    orderings the workflow fixes are load-bearing, and which are free. *)

val consistent_with_trace : State.progress -> Transform.Trace.t -> bool
(** Whether the concerns recorded by the workflow match the transformation
    trace, in order — a cross-check between the guidance layer and the
    engine. *)
