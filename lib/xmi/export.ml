let ids_attr ids = String.concat " " (List.map Mof.Id.to_string ids)

let bool_attr b = if b then "true" else "false"

(* Stereotype and tagged-value children shared by every element kind. *)
let extension_children (e : Mof.Element.t) =
  List.map (fun s -> Xml.elem ~attrs:[ ("name", s) ] "Stereotype" []) e.stereotypes
  @ List.map
      (fun (k, v) -> Xml.elem ~attrs:[ ("tag", k); ("value", v) ] "TaggedValue" [])
      e.tags

let rec element_to_xml m (e : Mof.Element.t) =
  let id_attr = ("xmi.id", Mof.Id.to_string e.id) in
  let name_attr = ("name", e.name) in
  let nested ids = List.map (fun c -> element_to_xml m (Mof.Model.find_exn m c)) ids in
  let ext = extension_children e in
  match e.kind with
  | Mof.Kind.Package { owned } ->
      Xml.elem ~attrs:[ id_attr; name_attr ] "Package" (ext @ nested owned)
  | Mof.Kind.Class c ->
      Xml.elem
        ~attrs:
          [
            id_attr;
            name_attr;
            ("isAbstract", bool_attr c.is_abstract);
            ("supers", ids_attr c.supers);
            ("realizes", ids_attr c.realizes);
          ]
        "Class"
        (ext @ nested c.attributes @ nested c.operations)
  | Mof.Kind.Interface { operations } ->
      Xml.elem ~attrs:[ id_attr; name_attr ] "Interface" (ext @ nested operations)
  | Mof.Kind.Attribute a ->
      let attrs =
        [
          id_attr;
          name_attr;
          ("type", Dtype.to_string a.attr_type);
          ("visibility", Mof.Kind.visibility_to_string a.attr_visibility);
          ("multiplicity", Mof.Kind.mult_to_string a.attr_mult);
          ("isDerived", bool_attr a.is_derived);
          ("isStatic", bool_attr a.is_static);
        ]
        @
        match a.initial_value with
        | Some v -> [ ("initial", v) ]
        | None -> []
      in
      Xml.elem ~attrs "Attribute" ext
  | Mof.Kind.Operation o ->
      Xml.elem
        ~attrs:
          [
            id_attr;
            name_attr;
            ("visibility", Mof.Kind.visibility_to_string o.op_visibility);
            ("isQuery", bool_attr o.is_query);
            ("isAbstract", bool_attr o.is_abstract_op);
            ("isStatic", bool_attr o.is_static_op);
          ]
        "Operation"
        (ext @ nested o.params)
  | Mof.Kind.Parameter p ->
      Xml.elem
        ~attrs:
          [
            id_attr;
            name_attr;
            ("type", Dtype.to_string p.param_type);
            ("direction", Mof.Kind.direction_to_string p.direction);
          ]
        "Parameter" ext
  | Mof.Kind.Association { ends } ->
      let end_to_xml (en : Mof.Kind.assoc_end) =
        Xml.elem
          ~attrs:
            [
              ("name", en.end_name);
              ("type", Mof.Id.to_string en.end_type);
              ("multiplicity", Mof.Kind.mult_to_string en.end_mult);
              ("navigable", bool_attr en.end_navigable);
              ("aggregation", Mof.Kind.aggregation_to_string en.end_aggregation);
            ]
          "AssociationEnd" []
      in
      Xml.elem ~attrs:[ id_attr; name_attr ] "Association"
        (ext @ List.map end_to_xml ends)
  | Mof.Kind.Generalization { child; parent } ->
      Xml.elem
        ~attrs:
          [
            id_attr;
            name_attr;
            ("child", Mof.Id.to_string child);
            ("parent", Mof.Id.to_string parent);
          ]
        "Generalization" ext
  | Mof.Kind.Dependency { client; supplier } ->
      Xml.elem
        ~attrs:
          [
            id_attr;
            name_attr;
            ("client", Mof.Id.to_string client);
            ("supplier", Mof.Id.to_string supplier);
          ]
        "Dependency" ext
  | Mof.Kind.Constraint_ { constrained; body; language } ->
      Xml.elem
        ~attrs:
          [ id_attr; name_attr; ("language", language); ("constrained", ids_attr constrained) ]
        "Constraint"
        (ext @ [ Xml.elem "Constraint.body" [ Xml.text body ] ])
  | Mof.Kind.Enumeration { literals } ->
      Xml.elem ~attrs:[ id_attr; name_attr ] "Enumeration"
        (ext
        @ List.map
            (fun lit -> Xml.elem ~attrs:[ ("name", lit) ] "Literal" [])
            literals)

let to_xml m =
  Obs.span ~cat:"xmi" "xmi.export"
    ~args:[ ("model", Obs.Event.V_string (Mof.Model.name m)) ]
  @@ fun () ->
  if Obs.enabled () then
    Obs.event ~cat:"xmi" "xmi.export.model"
      ~args:[ ("elements", Obs.Event.V_int (Mof.Model.size m)) ];
  Obs.incr "xmi.exports" [];
  let root = Mof.Model.root m in
  (* the model's own counter already exceeds every bound id *)
  let next = Mof.Model.next m in
  Xml.elem
    ~attrs:[ ("xmi.version", "1.2") ]
    "XMI"
    [
      Xml.elem "XMI.header"
        [
          Xml.elem "XMI.documentation"
            [ Xml.elem ~attrs:[ ("name", "mdweave") ] "XMI.exporter" [] ];
        ];
      Xml.elem "XMI.content"
        [
          Xml.elem
            ~attrs:
              [
                ("name", Mof.Model.name m);
                ("root", Mof.Id.to_string root);
                ("next", string_of_int next);
              ]
            "Model"
            [ element_to_xml m (Mof.Model.find_exn m root) ];
        ];
    ]

let to_string m = Xml_printer.to_string (to_xml m)

let write_file path m =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string m))
