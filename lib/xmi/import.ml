exception Import_error of string

let error fmt = Format.kasprintf (fun s -> raise (Import_error s)) fmt

let require node name =
  match Xml.attr name node with
  | Some v -> v
  | None ->
      error "missing attribute %s on <%s>" name
        (Option.value ~default:"?" (Xml.tag node))

let id_of node name =
  let raw = require node name in
  match Mof.Id.of_string raw with
  | Some id -> id
  | None -> error "malformed id %s in attribute %s" raw name

let ids_of node name =
  let raw = require node name in
  if String.equal raw "" then []
  else
    List.map
      (fun part ->
        match Mof.Id.of_string part with
        | Some id -> id
        | None -> error "malformed id %s in attribute %s" part name)
      (String.split_on_char ' ' raw)

let bool_of node name =
  match require node name with
  | "true" -> true
  | "false" -> false
  | v -> error "malformed boolean %s in attribute %s" v name

let dtype_of node name =
  let raw = require node name in
  match Dtype.of_string raw with
  | Some dt -> dt
  | None -> error "malformed datatype %s" raw

let mult_of node name =
  let raw = require node name in
  match Mof.Kind.mult_of_string raw with
  | Some mult -> mult
  | None -> error "malformed multiplicity %s" raw

let visibility_of node =
  let raw = require node "visibility" in
  match Mof.Kind.visibility_of_string raw with
  | Some v -> v
  | None -> error "malformed visibility %s" raw

(* Children that represent owned elements, as opposed to Stereotype /
   TaggedValue / AssociationEnd / Constraint.body extension nodes. *)
let owned_children node =
  List.filter
    (fun c ->
      match Xml.tag c with
      | Some
          ( "Stereotype" | "TaggedValue" | "AssociationEnd" | "Constraint.body"
          | "Literal" ) ->
          false
      | Some _ -> true
      | None -> false)
    (Xml.children node)

let stereotypes_of node =
  List.map (fun c -> require c "name") (Xml.find_children "Stereotype" node)

let tags_of node =
  List.map
    (fun c -> (require c "tag", require c "value"))
    (Xml.find_children "TaggedValue" node)

let assoc_end_of node =
  {
    Mof.Kind.end_name = require node "name";
    end_type =
      (match Mof.Id.of_string (require node "type") with
      | Some id -> id
      | None -> error "malformed association end type");
    end_mult = mult_of node "multiplicity";
    end_navigable = bool_of node "navigable";
    end_aggregation =
      (match Mof.Kind.aggregation_of_string (require node "aggregation") with
      | Some a -> a
      | None -> error "malformed aggregation");
  }

(* Walk the containment tree, emitting elements in document order. *)
let rec walk_element ~owner node acc =
  let id = id_of node "xmi.id" in
  let name = require node "name" in
  let tag = match Xml.tag node with Some t -> t | None -> error "text node" in
  let child_ids_of_kind wanted =
    List.filter_map
      (fun c ->
        match Xml.tag c with
        | Some t when String.equal t wanted -> Some (id_of c "xmi.id")
        | _ -> None)
      (Xml.children node)
  in
  let kind =
    match tag with
    | "Package" ->
        Mof.Kind.Package
          { owned = List.map (fun c -> id_of c "xmi.id") (owned_children node) }
    | "Class" ->
        Mof.Kind.Class
          {
            is_abstract = bool_of node "isAbstract";
            attributes = child_ids_of_kind "Attribute";
            operations = child_ids_of_kind "Operation";
            supers = ids_of node "supers";
            realizes = ids_of node "realizes";
          }
    | "Interface" ->
        Mof.Kind.Interface { operations = child_ids_of_kind "Operation" }
    | "Attribute" ->
        Mof.Kind.Attribute
          {
            attr_type = dtype_of node "type";
            attr_visibility = visibility_of node;
            attr_mult = mult_of node "multiplicity";
            is_derived = bool_of node "isDerived";
            is_static = bool_of node "isStatic";
            initial_value = Xml.attr "initial" node;
          }
    | "Operation" ->
        Mof.Kind.Operation
          {
            params = child_ids_of_kind "Parameter";
            op_visibility = visibility_of node;
            is_query = bool_of node "isQuery";
            is_abstract_op = bool_of node "isAbstract";
            is_static_op = bool_of node "isStatic";
          }
    | "Parameter" ->
        Mof.Kind.Parameter
          {
            param_type = dtype_of node "type";
            direction =
              (match Mof.Kind.direction_of_string (require node "direction") with
              | Some d -> d
              | None -> error "malformed direction");
          }
    | "Association" ->
        Mof.Kind.Association
          { ends = List.map assoc_end_of (Xml.find_children "AssociationEnd" node) }
    | "Generalization" ->
        Mof.Kind.Generalization
          { child = id_of node "child"; parent = id_of node "parent" }
    | "Dependency" ->
        Mof.Kind.Dependency
          { client = id_of node "client"; supplier = id_of node "supplier" }
    | "Constraint" ->
        let body =
          match Xml.find_child "Constraint.body" node with
          | Some b -> Xml.text_content b
          | None -> ""
        in
        Mof.Kind.Constraint_
          {
            constrained = ids_of node "constrained";
            body;
            language = require node "language";
          }
    | "Enumeration" ->
        Mof.Kind.Enumeration
          {
            literals =
              List.map
                (fun c -> require c "name")
                (Xml.find_children "Literal" node);
          }
    | t -> error "unknown element tag <%s>" t
  in
  let element =
    Mof.Element.make
      ~stereotypes:(stereotypes_of node)
      ~tags:(tags_of node) ~id ~name ~owner kind
  in
  List.fold_left
    (fun acc child -> walk_element ~owner:(Some id) child acc)
    (element :: acc) (owned_children node)

let of_xml doc =
  if Xml.tag doc <> Some "XMI" then error "root element is not <XMI>";
  let content =
    match Xml.find_child "XMI.content" doc with
    | Some c -> c
    | None -> error "missing <XMI.content>"
  in
  let model_node =
    match Xml.find_child "Model" content with
    | Some node -> node
    | None -> error "missing <Model>"
  in
  let root = id_of model_node "root" in
  let next =
    match int_of_string_opt (require model_node "next") with
    | Some n -> n
    | None -> error "malformed next counter"
  in
  let root_node =
    match Xml.child_elems model_node with
    | [ node ] -> node
    | nodes -> error "expected exactly one root element, found %d" (List.length nodes)
  in
  let elements = walk_element ~owner:None root_node [] in
  match Mof.Model.of_elements ~root ~next elements with
  | m -> m
  | exception Invalid_argument msg -> error "%s" msg

let from_string s =
  Obs.span ~cat:"xmi" "xmi.import"
    ~args:[ ("bytes", Obs.Event.V_int (String.length s)) ]
  @@ fun () ->
  Obs.incr "xmi.imports" [];
  of_xml (Xml_parser.parse s)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      from_string (really_input_string ic len))
