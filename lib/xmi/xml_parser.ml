exception Xml_error of string * int

let error pos fmt = Format.kasprintf (fun s -> raise (Xml_error (s, pos))) fmt

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let unescape s =
  let len = String.length s in
  let buf = Buffer.create len in
  let rec walk i =
    if i >= len then Buffer.contents buf
    else if s.[i] = '&' then (
      match String.index_from_opt s i ';' with
      | None -> error i "unterminated entity reference"
      | Some j ->
          let entity = String.sub s (i + 1) (j - i - 1) in
          (match entity with
          | "amp" -> Buffer.add_char buf '&'
          | "lt" -> Buffer.add_char buf '<'
          | "gt" -> Buffer.add_char buf '>'
          | "quot" -> Buffer.add_char buf '"'
          | "apos" -> Buffer.add_char buf '\''
          | _ when String.length entity > 1 && entity.[0] = '#' -> (
              let code =
                if entity.[1] = 'x' || entity.[1] = 'X' then
                  int_of_string_opt ("0x" ^ String.sub entity 2 (String.length entity - 2))
                else int_of_string_opt (String.sub entity 1 (String.length entity - 1))
              in
              match code with
              | Some c when c >= 0xD800 && c <= 0xDFFF ->
                  error i "character reference &%s; is a surrogate" entity
              | Some c when c >= 0 && c <= 0x10FFFF ->
                  Buffer.add_utf_8_uchar buf (Uchar.of_int c)
              | Some _ ->
                  error i "character reference &%s; is beyond U+10FFFF" entity
              | None -> error i "malformed character reference &%s;" entity)
          | _ -> error i "unknown entity &%s;" entity);
          walk (j + 1))
    else (
      Buffer.add_char buf s.[i];
      walk (i + 1))
  in
  walk 0

type state = {
  src : string;
  mutable pos : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = prefix

let skip_spaces st =
  while st.pos < String.length st.src && is_space st.src.[st.pos] do
    st.pos <- st.pos + 1
  done

let expect_char st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> error st.pos "expected %C, found %C" c c'
  | None -> error st.pos "expected %C at end of input" c

let parse_name st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> ()
  | _ -> error st.pos "expected a name");
  while
    st.pos < String.length st.src && is_name_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  String.sub st.src start (st.pos - start)

let parse_attr_value st =
  let quote =
    match peek st with
    | Some ('"' as q) | Some ('\'' as q) ->
        st.pos <- st.pos + 1;
        q
    | _ -> error st.pos "expected a quoted attribute value"
  in
  let start = st.pos in
  (match String.index_from_opt st.src start quote with
  | None -> error start "unterminated attribute value"
  | Some stop ->
      st.pos <- stop + 1;
      ());
  unescape (String.sub st.src start (st.pos - 1 - start))

let parse_attrs st =
  let rec loop acc =
    skip_spaces st;
    match peek st with
    | Some c when is_name_start c ->
        let name = parse_name st in
        skip_spaces st;
        expect_char st '=';
        skip_spaces st;
        let value = parse_attr_value st in
        loop ((name, value) :: acc)
    | _ -> List.rev acc
  in
  loop []

let skip_misc st =
  (* whitespace, comments, and the xml prolog before/between markup *)
  let rec loop () =
    skip_spaces st;
    if looking_at st "<!--" then begin
      match
        let rec find i =
          if i + 3 > String.length st.src then None
          else if String.sub st.src i 3 = "-->" then Some i
          else find (i + 1)
        in
        find (st.pos + 4)
      with
      | Some stop ->
          st.pos <- stop + 3;
          loop ()
      | None -> error st.pos "unterminated comment"
    end
    else if looking_at st "<?" then begin
      match
        let rec find i =
          if i + 2 > String.length st.src then None
          else if String.sub st.src i 2 = "?>" then Some i
          else find (i + 1)
        in
        find (st.pos + 2)
      with
      | Some stop ->
          st.pos <- stop + 2;
          loop ()
      | None -> error st.pos "unterminated processing instruction"
    end
  in
  loop ()

let is_blank s = String.for_all is_space s

let rec parse_element st =
  expect_char st '<';
  let tag = parse_name st in
  let attrs = parse_attrs st in
  skip_spaces st;
  if looking_at st "/>" then begin
    st.pos <- st.pos + 2;
    Xml.elem ~attrs tag []
  end
  else begin
    expect_char st '>';
    let children = parse_content st tag in
    Xml.elem ~attrs tag children
  end

and parse_content st enclosing_tag =
  let acc = ref [] in
  let rec loop () =
    if st.pos >= String.length st.src then
      error st.pos "unexpected end of input inside <%s>" enclosing_tag
    else if looking_at st "</" then begin
      st.pos <- st.pos + 2;
      let closing = parse_name st in
      skip_spaces st;
      expect_char st '>';
      if not (String.equal closing enclosing_tag) then
        error st.pos "mismatched closing tag </%s> for <%s>" closing
          enclosing_tag
    end
    else if looking_at st "<!--" then begin
      skip_misc st;
      loop ()
    end
    else if looking_at st "<![CDATA[" then begin
      let start = st.pos + 9 in
      let rec find i =
        if i + 3 > String.length st.src then
          error st.pos "unterminated CDATA section"
        else if String.sub st.src i 3 = "]]>" then i
        else find (i + 1)
      in
      let stop = find start in
      acc := Xml.text (String.sub st.src start (stop - start)) :: !acc;
      st.pos <- stop + 3;
      loop ()
    end
    else if looking_at st "<?" then begin
      skip_misc st;
      loop ()
    end
    else if looking_at st "<" then begin
      acc := parse_element st :: !acc;
      loop ()
    end
    else begin
      let start = st.pos in
      while st.pos < String.length st.src && st.src.[st.pos] <> '<' do
        st.pos <- st.pos + 1
      done;
      let raw = String.sub st.src start (st.pos - start) in
      if not (is_blank raw) then acc := Xml.text (unescape raw) :: !acc;
      loop ()
    end
  in
  loop ();
  List.rev !acc

let parse src =
  let st = { src; pos = 0 } in
  skip_misc st;
  if peek st <> Some '<' then error st.pos "expected a root element";
  let root = parse_element st in
  skip_misc st;
  if st.pos < String.length st.src then error st.pos "trailing content after root element";
  root
