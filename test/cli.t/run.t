The mdweave CLI, end to end: sample model, inspection, wizard listing,
single transformation, OCL checking, full build, join-point queries, and
interpreted execution of the woven program.

  $ mdweave sample bank.xmi
  wrote sample banking PIM to bank.xmi

  $ mdweave info bank.xmi
  model: banking (13 elements, level PIM)
  package banking
    class Account
      -balance : Real [1]
      +deposit(in amount : Real) : void
      +withdraw(in amount : Real) : Boolean
    class Teller
      +transfer(in from : Account, in target : Account, in amount : Real) : void
  well-formed: yes

  $ mdweave apply bank.xmi -c distribution -p remote=Account -o bank2.xmi
  T.distribution<[Account], "rmi", "localhost:1099"> [distribution] +23 -0 ~2
  -> bank2.xmi

  $ mdweave check bank2.xmi -e "Class.allInstances()->exists(c | c.hasStereotype('remote'))"
  holds

  $ mdweave check bank.xmi -e "Class.allInstances()->exists(c | c.hasStereotype('remote'))"
  fails
  [1]

  $ mdweave build bank.xmi -s "distribution: remote=Account|Teller" -s "transactions: transactional=Account" -o out
  T.distribution<[Account, Teller], "rmi", "localhost:1099"> [distribution] +37 -0 ~3
  T.transactions<[Account], "serializable", "required"> [transactions] +8 -0 ~2
  1 unit(s), 2 class(es), 5 method(s); 2 aspect(s), 9 advice application(s)
  artifacts written to out

  $ ls out
  BUILD-REPORT.txt
  aspects.aj
  functional.java
  refined.xmi
  woven.java

--explain-interference prints the critical-pair report: distribution's
before advice and transactions' around advice meet at shared join points
without commuting, so the pair is flagged with its witness shadow:

  $ mdweave build bank.xmi -s "distribution: remote=Account|Teller" -s "transactions: transactional=Account" -o out2 --explain-interference | grep -A1 "aspect pairs:"
  aspect pairs: 0 independent, 1 conflicting
  [!] DistributionAspect x TransactionAspect: non-commuting advice at a shared join point (DistributionAspect before vs TransactionAspect around) [at execution(Account.getBalance)]

  $ mdweave joinpoints bank.xmi --pointcut "execution(Teller.*)"
  execution(Teller.transfer)
  1 of 6 join point(s) match execution(Teller.*)

The query walks all three shadow kinds — field-set (and call) join
points are selectable too:

  $ mdweave joinpoints bank.xmi --pointcut "set(Account.balance)"
  set(Account.balance)
  1 of 6 join point(s) match set(Account.balance)

  $ mdweave run bank.xmi -s "transactions: transactional=Account" --class Account --method deposit
  T.transactions<[Account], "serializable", "required"> [transactions] +8 -0 ~2
  executing woven Account.deposit (1 default argument(s))
    TransactionManager.begin(serializable, required)
    TransactionManager.commit()
  -> returned null

  $ mdweave run bank.xmi -s "transactions: transactional=Account" --class Account --method deposit --fault Account.deposit
  T.transactions<[Account], "serializable", "required"> [transactions] +8 -0 ~2
  executing woven Account.deposit (1 default argument(s))
    FaultInjector.throw(Account.deposit)
  -> threw RuntimeException
  [1]

  $ mdweave ship bank.xmi -s "distribution: remote=Account" -s "security: secured=Account, roles=clerk|manager" -o pkg
  T.distribution<[Account], "rmi", "localhost:1099"> [distribution] +23 -0 ~2
  T.security<[Account], ["clerk", "manager"], "token"> [security] +10 -0 ~2
  shipped 2 step(s) to pkg

  $ cat pkg/MANIFEST
  step	distribution	remote=Account	protocol=rmi	registry=localhost:1099
  step	security	secured=Account	roles=clerk,manager	authentication=token

  $ mdweave replay pkg
  replay verified: final model reproduced

  $ mdweave color bank.xmi -s "distribution: remote=Teller" --html demarcation.html | tail -4
  [red] Dependency TellerProxy->Teller
  --
  red — distribution
  HTML demarcation written to demarcation.html

  $ grep -c "li style" demarcation.html
  21

  $ grep -A2 "interference analysis:" out/BUILD-REPORT.txt | head -2
  interference analysis:
  5 advised join point(s), 4 shared across concerns

Observability: --trace writes a Chrome trace-event file, --metrics a JSON
snapshot of the run's counters. Both must be produced and non-empty, and the
trace must contain the pipeline's nested spans.

  $ mdweave build bank.xmi -s "distribution: remote=Account|Teller" -s "transactions: transactional=Account" -o out2 --trace run.trace.json --metrics run.metrics.json
  T.distribution<[Account, Teller], "rmi", "localhost:1099"> [distribution] +37 -0 ~3
  T.transactions<[Account], "serializable", "required"> [transactions] +8 -0 ~2
  1 unit(s), 2 class(es), 5 method(s); 2 aspect(s), 9 advice application(s)
  artifacts written to out2
  trace written to run.trace.json
  metrics written to run.metrics.json

  $ test -s run.trace.json && test -s run.metrics.json && echo non-empty
  non-empty

  $ for span in pipeline.build pipeline.refine engine.apply weave xmi.export; do grep -c "\"name\":\"$span\"" run.trace.json >/dev/null && echo "$span: present"; done
  pipeline.build: present
  pipeline.refine: present
  engine.apply: present
  weave: present
  xmi.export: present

  $ grep -o '"metric":"engine.apply.ok","value":[0-9.]*' run.metrics.json
  "metric":"engine.apply.ok","value":2

The OCL layer caches classifier extents keyed by the model's journal
watermark. Messaging's two preconditions both walk Operation.allInstances()
on the same pre-state, so a metered apply must record at least one cache
hit alongside the planner's index probes.

  $ mdweave apply bank.xmi -c messaging -p async=Account.deposit -o bank3.xmi --metrics ocl.metrics.json
  T.messaging<[Account.deposit], "default-queue"> [messaging] +8 -0 ~2
  -> bank3.xmi
  metrics written to ocl.metrics.json

  $ grep -o '"metric":"ocl.extent.hit","value":[0-9.]*' ocl.metrics.json
  "metric":"ocl.extent.hit","value":1

  $ grep -o '"metric":"ocl.plan.index_probe","value":[0-9.]*' ocl.metrics.json
  "metric":"ocl.plan.index_probe","value":1

The bytecode tier rides the same exposition: --stats carries the
vm_compile_* / vm_exec_* counters (messaging's preconditions compile four
constraint bodies), and --no-vm ablates to the tree-walking baselines, so
no vm_* counter moves at all.

  $ mdweave apply bank.xmi -c messaging -p async=Account.deposit -o bank4.xmi --stats vm.stats.txt
  T.messaging<[Account.deposit], "default-queue"> [messaging] +8 -0 ~2
  -> bank4.xmi
  stats written to vm.stats.txt

  $ grep '^vm_compile_ocl ' vm.stats.txt
  vm_compile_ocl 4

  $ mdweave apply bank.xmi -c messaging -p async=Account.deposit -o bank5.xmi --no-vm --stats novm.stats.txt
  T.messaging<[Account.deposit], "default-queue"> [messaging] +8 -0 ~2
  -> bank5.xmi
  stats written to novm.stats.txt

  $ grep '^vm_' novm.stats.txt | wc -l
  0

The check driver exits 0 on a clean run and 1 when an oracle fails; the
hidden selftest-fail oracle forces the failure path deterministically.

  $ check --oracle weave --count 5 --quiet >/dev/null; echo "exit: $?"
  exit: 0

  $ check --oracle ocl --count 5 --quiet >/dev/null; echo "exit: $?"
  exit: 0

  $ check --oracle selftest-fail --count 5 --quiet >/dev/null; echo "exit: $?"
  exit: 1

  $ check --oracle weave --count 5 --quiet --trace check.trace.json >/dev/null && test -s check.trace.json && echo trace ok
  trace ok

  $ mdweave stats bank.xmi -s "distribution: remote=Account" -s "transactions: transactional=Account" | tail -7
  model: banking (PIM)
  elements: 44 total
    1 package(s), 5 class(es), 1 interface(s), 0 enumeration(s)
    0 association(s), 1 constraint(s)
  concerns applied: distribution, transactions
    distribution   25 element(s) in its concern space
    transactions   10 element(s) in its concern space

Batch refinement drives many independent models through one concern chain
on a domain pool. Report lines come back in submission order no matter
which domain finished first; a model that fails to read (or to refine)
gets its own error line and exit code 1 without poisoning the rest.

  $ mdweave batch --synthetic 3 --classes 4 -s "logging: targets=*" -s "transactions: transactional=C0" --jobs 2 -o batchout
  batch0: ok -> batchout/batch0.xmi
  batch1: ok -> batchout/batch1.xmi
  batch2: ok -> batchout/batch2.xmi
  3/3 ok (jobs=2)

  $ mdweave info batchout/batch1.xmi | tail -1
  well-formed: yes

  $ printf '<broken' > bad.xmi
  $ mdweave batch bad.xmi --synthetic 2 --classes 3 -s "logging: targets=*" --jobs 2; echo "exit: $?"
  bad: ERROR XML parse error at offset 7: expected '>' at end of input
  batch0: ok
  batch1: ok
  2/3 ok (jobs=2)
  exit: 1

Metric shards are per-domain and merged into the submitter's registry when
the pool joins, so counters written with --metrics are exact totals however
the items were scheduled: 4 items, 2 steps each.

  $ mdweave batch --synthetic 4 --classes 3 -s "logging: targets=*" -s "transactions: transactional=C0" --jobs 2 --metrics batch.metrics.json
  batch0: ok
  batch1: ok
  batch2: ok
  batch3: ok
  4/4 ok (jobs=2)
  metrics written to batch.metrics.json

  $ grep -o '"metric":"batch.items","value":[0-9.]*' batch.metrics.json
  "metric":"batch.items","value":4

  $ grep -o '"metric":"batch.ok","value":[0-9.]*' batch.metrics.json
  "metric":"batch.ok","value":4

  $ grep -o '"metric":"engine.apply.ok","value":[0-9.]*' batch.metrics.json
  "metric":"engine.apply.ok","value":8

The check driver itself schedules oracles on the same bounded pool
(--jobs), and the par oracle proves batch-parallel ≡ sequential.

  $ check --oracle par --count 5 --quiet >/dev/null; echo "exit: $?"
  exit: 0

  $ check --oracle diff --oracle wf --count 5 --quiet --jobs 2 >/dev/null; echo "exit: $?"
  exit: 0

The versioned repository lives in a content-addressed binary snapshot
(.mdr): objects are stored once however many commits share them, tags and
branches are named pointers, and save/load is a byte fixpoint. The store
grows by the changed elements only (13 objects for one version, 19 after a
commit that touches 6).

  $ mdweave repo init bank.xmi -o store.mdr
  initialized store.mdr: 1 commit(s), 13 object(s), 244 byte(s) in store

  $ mdweave repo tag store.mdr v0
  tagged #0 as v0

  $ mdweave apply bank.xmi -c logging -p 'targets=*' -o logged.xmi
  T.logging<["*"], "info"> [logging] +5 -0 ~1
  -> logged.xmi

  $ mdweave repo commit store.mdr logged.xmi -m "add logging" --concern logging --metrics repo.metrics.json
  [main] #1 add logging (+5 -0 ~1) [logging]
  metrics written to repo.metrics.json

  $ grep -o '"metric":"repo.store.objects","value":[0-9.]*' repo.metrics.json
  "metric":"repo.store.objects","value":19

  $ mdweave repo log store.mdr
  * #1 add logging (+5 -0 ~1) [logging]
    #0 initial model (+0 -0 ~0) <v0>

  $ mdweave repo load store.mdr
  head: #1 on main
  2 commit(s), 19 object(s), 368 byte(s) in store
  branch main -> #1
  tag v0 -> #0

  $ mdweave repo checkout store.mdr v0 -o v0.xmi
  checked out v0 at #0
  -> v0.xmi

  $ mdweave info v0.xmi | head -1
  model: banking (13 elements, level PIM)

  $ mdweave repo save store.mdr -o store-copy.mdr
  verified byte fixpoint, wrote store-copy.mdr (822 bytes)

  $ cmp store.mdr store-copy.mdr && echo identical
  identical

Concurrent sessions commit through the service front-end, each on its own
branch; the one-writer lock linearizes them and every commit lands.

  $ mdweave repo serve store.mdr --jobs 2 --commits 3
  branch sess0: 3 commit(s), head model 16 element(s)
  branch sess1: 3 commit(s), head model 16 element(s)
  served 2 session(s): 8 commit(s), 27 object(s), 521 byte(s) in store

  $ mdweave repo checkout store.mdr nope; echo "exit: $?"
  mdweave: unknown tag "nope"
  exit: 1

The repo oracle proves the content-addressed implementation against the
naive full-copy baseline case by case.

  $ check --oracle repo --count 5 --quiet >/dev/null; echo "exit: $?"
  exit: 0

A served store exposes its metrics as a Prometheus-style text document:
two sessions of two commits each land four samples in the commit-latency
histogram (`--stats -` writes the exposition to stdout).

  $ mdweave repo init bank.xmi -o obs-store.mdr
  initialized obs-store.mdr: 1 commit(s), 13 object(s), 244 byte(s) in store

  $ mdweave repo serve obs-store.mdr --jobs 2 --commits 2 --stats - | grep -E "TYPE repo_session_commit_latency_ns |repo_session_commit_latency_ns_count"
  # TYPE repo_session_commit_latency_ns histogram
  repo_session_commit_latency_ns_count 4

Tracing a single-domain serve is deterministic modulo timestamps: two
commit rounds and the final read make three requests, and the slice of
request 2 is exactly that round's read + commit span.

  $ mdweave repo init bank.xmi -o tr-store.mdr
  initialized tr-store.mdr: 1 commit(s), 13 object(s), 244 byte(s) in store

  $ mdweave repo serve tr-store.mdr --jobs 1 --commits 2 --trace serve.trace.jsonl
  branch sess0: 2 commit(s), head model 15 element(s)
  served 1 session(s): 3 commit(s), 17 object(s), 331 byte(s) in store
  trace written to serve.trace.jsonl

  $ mdweave trace summarize serve.trace.jsonl | head -1
  trace: 7 event(s), 1 domain(s), 3 request(s), 1 session(s)

  $ mdweave trace slice serve.trace.jsonl --request 2 | grep -c '"req":2'
  3

  $ mdweave trace slice serve.trace.jsonl --request 2 | grep -o '"name":"[^"]*"'
  "name":"session.read"
  "name":"session.commit"
  "name":"session.commit"

`mdweave stats` sniffs its input: a JSON snapshot renders as a table
instead of being parsed as a model.

  $ printf '[{"metric":"batch.items","value":4,"unit":"count"},\n{"metric":"repo.session.commit.latency_ns.p99","value":52000,"unit":"ns"}]\n' > snap.json
  $ mdweave stats snap.json
  metrics snapshot: 2 row(s)
    batch.items                                                           4 count
    repo.session.commit.latency_ns.p99                                52000 ns

`mdweave bench-diff` compares two snapshots and gates on direction-aware
regressions: exit 0 inside the tolerance, exit 1 on any regressed row.

  $ printf '[{"experiment":"E1","metric":"weave/full","value":100,"unit":"ns/run"},\n{"experiment":"E1","metric":"speedup","value":4,"unit":"x"}]\n' > bench-old.json
  $ printf '[{"experiment":"E1","metric":"weave/full","value":105,"unit":"ns/run"},\n{"experiment":"E1","metric":"speedup","value":4.1,"unit":"x"}]\n' > bench-new.json
  $ mdweave bench-diff bench-old.json bench-new.json --tolerance 10; echo "exit: $?"
  bench-diff: 2 row(s), tolerance 10%
    ok        E1         speedup                                                         4 -> 4.1             +2.5% (x)
    ok        E1         weave/full                                                    100 -> 105             +5.0% (ns/run)
  summary: 0 regressed, 0 improved, 2 ok, 0 info, 0 added, 0 removed
  exit: 0

  $ printf '[{"experiment":"E1","metric":"weave/full","value":350,"unit":"ns/run"},\n{"experiment":"E1","metric":"speedup","value":4.1,"unit":"x"}]\n' > bench-slow.json
  $ mdweave bench-diff bench-old.json bench-slow.json --tolerance 10; echo "exit: $?"
  bench-diff: 2 row(s), tolerance 10%
    ok        E1         speedup                                                         4 -> 4.1             +2.5% (x)
    REGRESSED E1         weave/full                                                    100 -> 350           +250.0% (ns/run)
  summary: 1 regressed, 0 improved, 1 ok, 0 info, 0 added, 0 removed
  exit: 1

`mdweave workflow` reports refinement progress against the middleware
workflow and surfaces the aspect-interference verdicts for the concerns
applied so far.

  $ mdweave workflow bank.xmi -s "distribution: remote=Account|Teller" -s "transactions: transactional=Account"
  T.distribution<[Account, Teller], "rmi", "localhost:1099"> [distribution] +37 -0 ~3
  T.transactions<[Account], "serializable", "required"> [transactions] +8 -0 ~2
  refinement progress:
    [x] distribute: distribution
    [x] make-transactional: transactions
    [ ] secure: choose one of security
    remaining concerns: security, concurrency, logging
  aspect interference: 1 pair(s), 1 order-sensitive
    [!!] DistributionAspect ~ TransactionAspect: non-commuting advice at a shared join point (DistributionAspect before vs TransactionAspect around) (workflow order is load-bearing)
