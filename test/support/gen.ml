(* QCheck generators shared across the property-test suites. *)

let name_gen =
  (* short alphabetic names, first letter's case chosen by the caller *)
  QCheck2.Gen.(
    map
      (fun (c, rest) ->
        String.make 1 c ^ String.concat "" (List.map (String.make 1) rest))
      (pair (char_range 'a' 'z') (small_list (char_range 'a' 'z'))))

let upper_name_gen = QCheck2.Gen.map String.capitalize_ascii name_gen

(* OCL runtime values, sized to keep collections small. *)
let value_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      let scalar =
        oneof
          [
            map (fun b -> Ocl.Value.V_bool b) bool;
            map (fun i -> Ocl.Value.V_int i) small_signed_int;
            map (fun f -> Ocl.Value.V_real f) (float_bound_inclusive 100.0);
            map (fun s -> Ocl.Value.of_string s) name_gen;
            return Ocl.Value.V_undefined;
          ]
      in
      if n <= 1 then scalar
      else
        frequency
          [
            (4, scalar);
            (1, map Ocl.Value.set (list_size (int_bound 4) (self (n / 2))));
            (1, map Ocl.Value.seq (list_size (int_bound 4) (self (n / 2))));
            (1, map Ocl.Value.bag (list_size (int_bound 4) (self (n / 2))));
          ])

(* A random well-formed model built through the Builder API: a root with up
   to [max_classes] classes, random attributes/operations, random
   generalizations (acyclic by construction: parents are earlier classes),
   stereotypes and tags. *)
let model_gen =
  let open QCheck2.Gen in
  let* n_classes = int_range 1 8 in
  let* specs =
    list_repeat n_classes
      (triple (int_bound 3) (int_bound 3) (option (int_bound (max 0 (n_classes - 1)))))
  in
  let* stereo = name_gen in
  return
    (let m = Mof.Model.create ~name:"random" in
     let root = Mof.Model.root m in
     let m, ids =
       List.fold_left
         (fun (m, ids) (n_attrs, n_ops, parent_idx) ->
           let i = List.length ids in
           let m, cls =
             Mof.Builder.add_class m ~owner:root ~name:(Printf.sprintf "R%d" i)
           in
           let rec attrs m j =
             if j >= n_attrs then m
             else
               let m, _ =
                 Mof.Builder.add_attribute m ~cls
                   ~name:(Printf.sprintf "a%d" j)
                   ~typ:Mof.Kind.Dt_integer
               in
               attrs m (j + 1)
           in
           let rec ops m j =
             if j >= n_ops then m
             else
               let m, op =
                 Mof.Builder.add_operation m ~owner:cls
                   ~name:(Printf.sprintf "o%d" j)
               in
               let m = Mof.Builder.set_result m ~op ~typ:Mof.Kind.Dt_boolean in
               ops m (j + 1)
           in
           let m = ops (attrs m 0) 0 in
           let m =
             match parent_idx with
             | Some p when p < i ->
                 let parent = List.nth ids p in
                 fst (Mof.Builder.add_generalization m ~child:cls ~parent)
             | Some _ | None -> m
           in
           let m =
             if i mod 2 = 0 then Mof.Builder.add_stereotype m cls stereo else m
           in
           (m, ids @ [ cls ]))
         (m, []) specs
     in
     ignore ids;
     m)

(* Random pointcuts over a small vocabulary, for parser round-trip
   properties. *)
let pointcut_gen =
  let open QCheck2.Gen in
  let pat = oneofl [ "Account"; "Teller"; "*Proxy"; "set*"; "*" ] in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [
            map2 Aspects.Pointcut.execution pat pat;
            map2 Aspects.Pointcut.call pat pat;
            map2 Aspects.Pointcut.set_field pat pat;
            map Aspects.Pointcut.within pat;
          ]
      in
      if n <= 1 then leaf
      else
        frequency
          [
            (3, leaf);
            ( 1,
              map2
                (fun a b -> Aspects.Pointcut.And (a, b))
                (self (n / 2)) (self (n / 2)) );
            ( 1,
              map2
                (fun a b -> Aspects.Pointcut.Or (a, b))
                (self (n / 2)) (self (n / 2)) );
            (1, map (fun a -> Aspects.Pointcut.Not a) (self (n / 2)));
          ])

(* Wildcard patterns paired with names engineered to sometimes match. *)
let pattern_and_name_gen =
  let open QCheck2.Gen in
  let* base = upper_name_gen in
  let* variant =
    oneof
      [
        return base;
        map (fun s -> base ^ s) name_gen;
        map (fun s -> s ^ base) name_gen;
      ]
  in
  let* pattern =
    oneof
      [
        return base;
        return (base ^ "*");
        return ("*" ^ base);
        return ("*" ^ base ^ "*");
        return "*";
      ]
  in
  return (pattern, variant)

(* Random shadows of all three kinds, drawn from the same vocabulary as
   [pointcut_gen] so pointcut x shadow pairs actually collide. Receivers
   are sometimes unresolved ([None]) to exercise the optimistic call
   matching path. *)
let shadow_gen =
  let open QCheck2.Gen in
  let cls = oneofl [ "Account"; "Teller"; "AccountProxy"; "Helper" ] in
  let mth = oneofl [ "setBalance"; "set"; "run"; "deposit"; "m" ] in
  oneof
    [
      map2
        (fun c m ->
          Weaver.Joinpoint.Sh_execution { class_name = c; method_name = m })
        cls mth;
      map3
        (fun w (recv, m) c ->
          Weaver.Joinpoint.Sh_call
            {
              within_class = w;
              within_method = "m";
              receiver_class = (if recv then Some c else None);
              method_name = m;
            })
        cls (pair bool mth) cls;
      map3
        (fun w t f ->
          Weaver.Joinpoint.Sh_field_set
            {
              within_class = w;
              within_method = "m";
              target_class = t;
              field_name = f;
            })
        cls cls (oneofl [ "balance"; "state"; "f" ]);
    ]
