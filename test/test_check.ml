(* Tests for the fuzz harness itself, plus the fixed-seed smoke battery:
   every oracle runs 200 randomized cases inside `dune runtest`. Long runs
   (10k+ cases, arbitrary seeds) go through `bin/check_cli` — see README. *)

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let smoke_seed = 42L
let smoke_count = 200

(* ---- prng ----------------------------------------------------------------- *)

let prng_tests =
  [
    Alcotest.test_case "equal seeds give equal streams" `Quick (fun () ->
        let a = Check.Prng.make 7L and b = Check.Prng.make 7L in
        let da = List.init 50 (fun _ -> Check.Prng.bits64 a) in
        let db = List.init 50 (fun _ -> Check.Prng.bits64 b) in
        check cb "same" true (da = db));
    Alcotest.test_case "mix separates case streams" `Quick (fun () ->
        let s1 = Check.Prng.mix 42L 1 and s2 = Check.Prng.mix 42L 2 in
        check cb "distinct" true (s1 <> s2));
    Alcotest.test_case "int stays in bounds" `Quick (fun () ->
        let g = Check.Prng.make 3L in
        for _ = 1 to 1000 do
          let v = Check.Prng.int g 7 in
          check cb "in range" true (v >= 0 && v < 7)
        done);
    Alcotest.test_case "shuffle is a permutation" `Quick (fun () ->
        let g = Check.Prng.make 11L in
        let xs = List.init 20 Fun.id in
        let ys = Check.Prng.shuffle g xs in
        check cb "same multiset" true (List.sort compare ys = xs));
  ]

(* ---- shrinking ------------------------------------------------------------ *)

let shrink_tests =
  [
    Alcotest.test_case "finds a 1-element core" `Quick (fun () ->
        let fails xs = List.mem 13 xs in
        let input = List.init 40 Fun.id in
        check cb "input fails" true (fails input);
        let out = Check.Shrink.list ~still_fails:fails input in
        check cb "still fails" true (fails out);
        check ci "minimal" 1 (List.length out));
    Alcotest.test_case "finds a 2-element core" `Quick (fun () ->
        let fails xs = List.mem 3 xs && List.mem 33 xs in
        let out =
          Check.Shrink.list ~still_fails:fails (List.init 40 Fun.id)
        in
        check cb "still fails" true (fails out);
        check ci "minimal" 2 (List.length out));
    Alcotest.test_case "non-failing input returned unchanged" `Quick (fun () ->
        let out =
          Check.Shrink.list ~still_fails:(fun _ -> false) [ 1; 2; 3 ]
        in
        check cb "unchanged" true (out = [ 1; 2; 3 ]));
  ]

(* ---- edit scripts --------------------------------------------------------- *)

let edit_tests =
  [
    Alcotest.test_case "apply is total on arbitrary sublists" `Quick (fun () ->
        (* drop every other op of a generated script pair: still applies *)
        let rng = Check.Prng.make 5L in
        for _ = 1 to 50 do
          let base = Check.Gen.base_script rng in
          let edits = Check.Gen.edit_script rng ~base in
          let thin xs = List.filteri (fun i _ -> i mod 2 = 0) xs in
          let m, slots =
            Check.Edit.apply_with_slots
              (Mof.Model.create ~name:"fuzz")
              (thin base)
          in
          ignore (Check.Edit.apply_from m ~slots (thin edits))
        done);
    Alcotest.test_case "base scripts build well-formed models" `Quick (fun () ->
        let rng = Check.Prng.make 17L in
        for _ = 1 to 100 do
          let base = Check.Gen.base_script rng in
          let m = Check.Edit.apply (Mof.Model.create ~name:"fuzz") base in
          check cb "clean" true (Mof.Wellformed.check m = [])
        done);
    Alcotest.test_case "sublists of base scripts stay well-formed" `Quick
      (fun () ->
        let rng = Check.Prng.make 23L in
        for _ = 1 to 50 do
          let base = Check.Gen.base_script rng in
          let thin xs = List.filteri (fun i _ -> i mod 3 <> 1) xs in
          let m = Check.Edit.apply (Mof.Model.create ~name:"fuzz") (thin base) in
          check cb "clean" true (Mof.Wellformed.check m = [])
        done);
  ]

(* ---- oracle plumbing ------------------------------------------------------ *)

let oracle_tests =
  [
    Alcotest.test_case "tag_of extracts the bracketed prefix" `Quick (fun () ->
        check Alcotest.string "tagged" "[xmi]"
          (Check.Oracle.tag_of "[xmi] something broke");
        check Alcotest.string "untagged" "plain" (Check.Oracle.tag_of "plain"));
    Alcotest.test_case "all ten oracles are registered" `Quick (fun () ->
        check (Alcotest.list Alcotest.string) "names"
          [
            "diff"; "wf"; "xmi"; "query"; "ocl"; "weave"; "weave-inc"; "par";
            "repo"; "vm";
          ]
          (List.map (fun (o : Check.Oracle.t) -> o.name) Check.Oracle.all));
    Alcotest.test_case "armored rendering parses back to the plain tree" `Quick
      (fun () ->
        let rng = Check.Prng.make 29L in
        for _ = 1 to 50 do
          let base = Check.Gen.base_script rng in
          let m = Check.Edit.apply (Mof.Model.create ~name:"fuzz") base in
          let tree = Xmi.Export.to_xml m in
          let armored = Check.Gen.armor (Check.Prng.split rng) tree in
          let plain = Xmi.Xml_parser.parse (Xmi.Export.to_string m) in
          check cb "same tree" true
            (Xmi.Xml.equal (Xmi.Xml_parser.parse armored) plain)
        done);
  ]

(* ---- detection demo: a deliberately broken cache must be caught ----------- *)

(* [debug_serve_stale] makes the extent cache serve its most recent slot
   without the watermark check — the exact bug the (model journal watermark,
   classifier) key exists to prevent. The ocl oracle compares cached against
   naive evaluation, so a short run must flag the divergence. *)
let stale_cache_tests =
  [
    Alcotest.test_case "a stale extent cache is caught by the ocl oracle"
      `Quick (fun () ->
        let oracle =
          match Check.Oracle.find "ocl" with
          | Some o -> o
          | None -> Alcotest.fail "ocl oracle not registered"
        in
        Ocl.Meta.debug_serve_stale true;
        Fun.protect
          ~finally:(fun () -> Ocl.Meta.debug_serve_stale false)
          (fun () ->
            match Check.Harness.run oracle ~seed:smoke_seed ~count:200 with
            | Ok _ -> Alcotest.fail "stale extents went undetected"
            | Error (f, _) ->
                (* a stale extent surfaces either as cached/naive
                   disagreement ([ocl]) or as an exception the naive path
                   cannot raise — the served set holds element ids that no
                   longer exist in the model ([ocl-crash]) *)
                let tag = Check.Oracle.tag_of f.Check.Harness.message in
                check cb
                  (Printf.sprintf "tagged as an ocl finding (got %s)" tag)
                  true
                  (List.mem tag [ "[ocl]"; "[ocl-crash]" ])));
  ]

(* ---- the smoke battery ---------------------------------------------------- *)

let smoke_case (oracle : Check.Oracle.t) =
  Alcotest.test_case
    (Printf.sprintf "%s: %d cases at seed %Ld" oracle.name smoke_count
       smoke_seed)
    `Quick
    (fun () ->
      match Check.Harness.run oracle ~seed:smoke_seed ~count:smoke_count with
      | Ok stats -> check ci "all cases ran" smoke_count stats.cases
      | Error (f, _) ->
          Alcotest.fail (Format.asprintf "%a" Check.Harness.pp_failure f))

let smoke_tests = List.map smoke_case Check.Oracle.all

let () =
  Alcotest.run "check"
    [
      ("prng", prng_tests);
      ("shrink", shrink_tests);
      ("edit", edit_tests);
      ("oracle", oracle_tests);
      ("stale-cache", stale_cache_tests);
      ("smoke", smoke_tests);
    ]
