(* Tests for the Java-like code model: types, AST traversals, the
   functional code generator, and the printer. *)

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---- jtype -------------------------------------------------------------- *)

let jtype_tests =
  [
    Alcotest.test_case "rendering" `Quick (fun () ->
        check cs "void" "void" (Code.Jtype.to_string Code.Jtype.T_void);
        check cs "list" "List<Account>"
          (Code.Jtype.to_string (Code.Jtype.T_list (Code.Jtype.T_named "Account")));
        check cs "nested" "List<List<int>>"
          (Code.Jtype.to_string
             (Code.Jtype.T_list (Code.Jtype.T_list Code.Jtype.T_int))));
    Alcotest.test_case "defaults" `Quick (fun () ->
        check cb "void none" true (Code.Jtype.default_value_text Code.Jtype.T_void = None);
        check cb "bool" true
          (Code.Jtype.default_value_text Code.Jtype.T_boolean = Some "false");
        check cb "named" true
          (Code.Jtype.default_value_text (Code.Jtype.T_named "X") = Some "null"));
    Alcotest.test_case "of_datatype maps the metamodel" `Quick (fun () ->
        let m = Fixtures.banking () in
        let acct = Fixtures.class_id m "Account" in
        check cb "real" true
          (Code.Jtype.of_datatype m Mof.Kind.Dt_real = Code.Jtype.T_double);
        check cb "ref" true
          (Code.Jtype.of_datatype m (Mof.Kind.Dt_ref acct)
          = Code.Jtype.T_named "Account");
        check cb "collection" true
          (Code.Jtype.of_datatype m (Mof.Kind.Dt_collection Mof.Kind.Dt_string)
          = Code.Jtype.T_list Code.Jtype.T_string));
  ]

(* ---- expression / statement traversals ---------------------------------- *)

let traversal_tests =
  let call recv name args = Code.Jexpr.E_call (recv, name, args) in
  [
    Alcotest.test_case "map_calls rewrites bottom-up" `Quick (fun () ->
        let e =
          Code.Jexpr.E_binary
            ( "+",
              call None "f" [ call None "g" [] ],
              Code.Jexpr.E_int 1 )
        in
        let renamed =
          Code.Jexpr.map_calls
            (fun recv name args -> Code.Jexpr.E_call (recv, name ^ "2", args))
            e
        in
        match renamed with
        | Code.Jexpr.E_binary
            ("+", Code.Jexpr.E_call (None, "f2", [ Code.Jexpr.E_call (None, "g2", []) ]), _)
          ->
            ()
        | _ -> Alcotest.fail "unexpected rewrite");
    Alcotest.test_case "fold_calls visits every call" `Quick (fun () ->
        let e =
          call (Some (call None "a" [])) "b" [ call None "c" [] ]
        in
        let names =
          Code.Jexpr.fold_calls (fun acc (_, name, _) -> name :: acc) [] e
        in
        check ci "three calls" 3 (List.length names));
    Alcotest.test_case "stmt map_expr recurses through structure" `Quick
      (fun () ->
        let stmt =
          Code.Jstmt.S_if
            ( Code.Jexpr.E_name "x",
              [ Code.Jstmt.S_return (Some (Code.Jexpr.E_name "x")) ],
              [ Code.Jstmt.S_expr (Code.Jexpr.E_name "x") ] )
        in
        let renamed =
          Code.Jstmt.map_expr
            (fun _ -> Code.Jexpr.E_name "y")
            stmt
        in
        let count =
          Code.Jstmt.fold_expr
            (fun acc e -> if e = Code.Jexpr.E_name "y" then acc + 1 else acc)
            0 renamed
        in
        check ci "all three rewritten" 3 count);
  ]

(* ---- jdecl / junit -------------------------------------------------------- *)

let mk_method name =
  {
    Code.Jdecl.method_name = name;
    method_mods = [ Code.Jdecl.M_public ];
    return_type = Code.Jtype.T_void;
    params = [];
    throws = [];
    body = Some [];
  }

let mk_class name =
  {
    Code.Jdecl.class_name = name;
    class_mods = [ Code.Jdecl.M_public ];
    extends = None;
    implements = [];
    fields = [];
    methods = [ mk_method "run" ];
  }

let decl_tests =
  [
    Alcotest.test_case "add_field deduplicates by name" `Quick (fun () ->
        let f =
          {
            Code.Jdecl.field_name = "x";
            field_type = Code.Jtype.T_int;
            field_mods = [];
            field_init = None;
          }
        in
        let c = Code.Jdecl.add_field f (Code.Jdecl.add_field f (mk_class "C")) in
        check ci "one field" 1 (List.length c.Code.Jdecl.fields));
    Alcotest.test_case "find_method" `Quick (fun () ->
        let c = mk_class "C" in
        check cb "found" true (Code.Jdecl.find_method c "run" <> None);
        check cb "missing" true (Code.Jdecl.find_method c "nope" = None));
    Alcotest.test_case "junit lookups and updates" `Quick (fun () ->
        let program =
          [ Code.Junit.unit_ ~package:"p" [ Code.Jdecl.Class (mk_class "C") ] ]
        in
        check cb "found" true (Code.Junit.find_class program "C" <> None);
        let program =
          Code.Junit.update_class program "C" (Code.Jdecl.add_method (mk_method "extra"))
        in
        check ci "methods" 2 (Code.Junit.total_methods program));
  ]

(* ---- generator ------------------------------------------------------------- *)

let generator_tests =
  let program = Code.Generator.generate (Fixtures.banking ()) in
  let account =
    match Code.Junit.find_class program "Account" with
    | Some c -> c
    | None -> Alcotest.fail "Account not generated"
  in
  [
    Alcotest.test_case "classes and packages" `Quick (fun () ->
        check ci "four classes" 4 (List.length (Code.Junit.classes program));
        check cb "package name from qualified name" true
          (List.exists (fun (u : Code.Junit.t) -> u.Code.Junit.package = "bank") program));
    Alcotest.test_case "attributes become private fields with accessors" `Quick
      (fun () ->
        check cb "balance field" true
          (List.exists
             (fun (f : Code.Jdecl.field) ->
               f.Code.Jdecl.field_name = "balance"
               && f.Code.Jdecl.field_type = Code.Jtype.T_double)
             account.Code.Jdecl.fields);
        check cb "getter" true (Code.Jdecl.find_method account "getBalance" <> None);
        check cb "setter" true (Code.Jdecl.find_method account "setBalance" <> None));
    Alcotest.test_case "operation stubs return defaults" `Quick (fun () ->
        match Code.Jdecl.find_method account "withdraw" with
        | Some m -> (
            check cb "boolean" true (m.Code.Jdecl.return_type = Code.Jtype.T_boolean);
            match m.Code.Jdecl.body with
            | Some body ->
                check cb "returns false" true
                  (List.exists
                     (fun s -> s = Code.Jstmt.S_return (Some (Code.Jexpr.E_bool false)))
                     body)
            | None -> Alcotest.fail "stub has no body")
        | None -> Alcotest.fail "withdraw missing");
    Alcotest.test_case "generalization becomes extends" `Quick (fun () ->
        match Code.Junit.find_class program "SavingsAccount" with
        | Some c -> check cb "extends" true (c.Code.Jdecl.extends = Some "Account")
        | None -> Alcotest.fail "SavingsAccount missing");
    Alcotest.test_case "navigable association ends become fields" `Quick
      (fun () ->
        (* Customer side gets 'accounts : List<Account>', Account side gets
           'owner : Customer' *)
        match Code.Junit.find_class program "Customer" with
        | Some customer ->
            check cb "accounts field" true
              (List.exists
                 (fun (f : Code.Jdecl.field) ->
                   f.Code.Jdecl.field_name = "accounts"
                   && f.Code.Jdecl.field_type
                      = Code.Jtype.T_list (Code.Jtype.T_named "Account"))
                 customer.Code.Jdecl.fields);
            check cb "owner field on Account" true
              (List.exists
                 (fun (f : Code.Jdecl.field) ->
                   f.Code.Jdecl.field_name = "owner"
                   && f.Code.Jdecl.field_type = Code.Jtype.T_named "Customer")
                 account.Code.Jdecl.fields)
        | None -> Alcotest.fail "Customer missing");
    Alcotest.test_case "List import added when needed" `Quick (fun () ->
        check cb "import" true
          (List.exists
             (fun (u : Code.Junit.t) -> List.mem "java.util.List" u.Code.Junit.imports)
             program));
    Alcotest.test_case "exclude_stereotypes filters classifiers" `Quick
      (fun () ->
        let m = Fixtures.banking () in
        let acct = Fixtures.class_id m "Account" in
        let m = Mof.Builder.add_stereotype m acct "infrastructure" in
        let filtered =
          Code.Generator.generate
            ~options:
              {
                Code.Generator.accessors = true;
                exclude_stereotypes = [ "infrastructure" ];
              }
            m
        in
        check cb "excluded" true (Code.Junit.find_class filtered "Account" = None);
        check cb "others kept" true (Code.Junit.find_class filtered "Teller" <> None));
    Alcotest.test_case "interfaces generate bodyless methods" `Quick (fun () ->
        let m = Fixtures.banking () in
        let m, iface = Mof.Builder.add_interface m ~owner:(Mof.Model.root m) ~name:"Api" in
        let m, op = Mof.Builder.add_operation m ~owner:iface ~name:"ping" in
        let m = Mof.Builder.set_result m ~op ~typ:Mof.Kind.Dt_boolean in
        let program = Code.Generator.generate m in
        match Code.Junit.find_interface program "Api" with
        | Some i ->
            check ci "one method" 1 (List.length i.Code.Jdecl.iface_methods);
            check cb "no body" true
              ((List.hd i.Code.Jdecl.iface_methods).Code.Jdecl.body = None)
        | None -> Alcotest.fail "interface missing");
    Alcotest.test_case "enumerations become constant classes" `Quick (fun () ->
        let m = Fixtures.banking () in
        let m, _ =
          Mof.Builder.add_enumeration m ~owner:(Mof.Model.root m)
            ~name:"Currency" ~literals:[ "CHF"; "EUR" ]
        in
        let program = Code.Generator.generate m in
        match Code.Junit.find_class program "Currency" with
        | Some c ->
            check cb "final class" true
              (List.mem Code.Jdecl.M_final c.Code.Jdecl.class_mods);
            check cb "constant" true
              (List.exists
                 (fun (f : Code.Jdecl.field) ->
                   f.Code.Jdecl.field_name = "CHF"
                   && f.Code.Jdecl.field_init = Some (Code.Jexpr.E_string "CHF"))
                 c.Code.Jdecl.fields)
        | None -> Alcotest.fail "Currency not generated");
    Alcotest.test_case "accessors can be disabled" `Quick (fun () ->
        let program =
          Code.Generator.generate
            ~options:{ Code.Generator.accessors = false; exclude_stereotypes = [] }
            (Fixtures.banking ())
        in
        match Code.Junit.find_class program "Account" with
        | Some c -> check cb "no getter" true (Code.Jdecl.find_method c "getBalance" = None)
        | None -> Alcotest.fail "Account missing");
  ]

(* ---- printer ----------------------------------------------------------------- *)

let printer_tests =
  [
    Alcotest.test_case "expressions" `Quick (fun () ->
        check cs "call"
          "this.f(1, \"s\")"
          (Code.Printer.expr_to_string
             (Code.Jexpr.E_call
                (Some Code.Jexpr.E_this, "f", [ Code.Jexpr.E_int 1; Code.Jexpr.E_string "s" ])));
        check cs "new" "new C()" (Code.Printer.expr_to_string (Code.Jexpr.E_new ("C", [])));
        check cs "binary" "(a + b)"
          (Code.Printer.expr_to_string
             (Code.Jexpr.E_binary ("+", Code.Jexpr.E_name "a", Code.Jexpr.E_name "b")));
        check cs "cast" "((int) x)"
          (Code.Printer.expr_to_string
             (Code.Jexpr.E_cast (Code.Jtype.T_int, Code.Jexpr.E_name "x"))));
    Alcotest.test_case "string literal escaping" `Quick (fun () ->
        check cs "escaped" "\"a\\\"b\\\\c\\n\""
          (Code.Printer.expr_to_string (Code.Jexpr.E_string "a\"b\\c\n")));
    Alcotest.test_case "statements" `Quick (fun () ->
        let s =
          Code.Jstmt.S_if
            ( Code.Jexpr.E_name "ok",
              [ Code.Jstmt.S_return None ],
              [ Code.Jstmt.S_throw (Code.Jexpr.E_new ("Error", [])) ] )
        in
        let text = Code.Printer.stmt_to_string s in
        check cb "if" true (contains text "if (ok) {");
        check cb "else" true (contains text "} else {");
        check cb "throw" true (contains text "throw new Error();"));
    Alcotest.test_case "try/catch/finally and sync" `Quick (fun () ->
        let s =
          Code.Jstmt.S_try
            ( [ Code.Jstmt.S_comment "body" ],
              [ (Code.Jtype.T_named "Exception", "e", [ Code.Jstmt.S_comment "handle" ]) ],
              [ Code.Jstmt.S_comment "cleanup" ] )
        in
        let text = Code.Printer.stmt_to_string s in
        check cb "catch" true (contains text "} catch (Exception e) {");
        check cb "finally" true (contains text "} finally {");
        let sync =
          Code.Printer.stmt_to_string
            (Code.Jstmt.S_sync (Code.Jexpr.E_this, [ Code.Jstmt.S_comment "x" ]))
        in
        check cb "sync" true (contains sync "synchronized (this) {"));
    Alcotest.test_case "full unit rendering" `Quick (fun () ->
        let program = Code.Generator.generate (Fixtures.banking ()) in
        let text = Code.Printer.program_to_string program in
        List.iter
          (fun needle -> check cb needle true (contains text needle))
          [
            "package bank;";
            "import java.util.List;";
            "public class Account {";
            "public class SavingsAccount extends Account {";
            "private double balance;";
            "public boolean withdraw(double amount) {";
            "// TODO: implement";
          ]);
  ]

(* ---- parser: print/parse round trip ---------------------------------------- *)

let roundtrip_unit (u : Code.Junit.t) =
  let text = Code.Printer.unit_to_string u in
  match Code.Jparser.parse_unit_opt text with
  | Ok u' -> Code.Junit.equal [ u ] [ u' ]
  | Error _ -> false

let parser_tests =
  [
    Alcotest.test_case "expression golden parses" `Quick (fun () ->
        let cases =
          [
            ("1 + 2 * 3", Code.Jexpr.E_binary ("+", Code.Jexpr.E_int 1,
               Code.Jexpr.E_binary ("*", Code.Jexpr.E_int 2, Code.Jexpr.E_int 3)));
            ("this.f(x)", Code.Jexpr.E_call (Some Code.Jexpr.E_this, "f",
               [ Code.Jexpr.E_name "x" ]));
            ("new C(1, \"s\")", Code.Jexpr.E_new ("C",
               [ Code.Jexpr.E_int 1; Code.Jexpr.E_string "s" ]));
            ("a = b = 1", Code.Jexpr.E_assign (Code.Jexpr.E_name "a",
               Code.Jexpr.E_assign (Code.Jexpr.E_name "b", Code.Jexpr.E_int 1)));
            ("((int) x)", Code.Jexpr.E_cast (Code.Jtype.T_int, Code.Jexpr.E_name "x"));
            ("(x instanceof C)", Code.Jexpr.E_instanceof (Code.Jexpr.E_name "x", "C"));
            ("!a && b || c", Code.Jexpr.E_binary ("||",
               Code.Jexpr.E_binary ("&&",
                 Code.Jexpr.E_unary ("!", Code.Jexpr.E_name "a"),
                 Code.Jexpr.E_name "b"),
               Code.Jexpr.E_name "c"));
            ("a.b.c", Code.Jexpr.E_field (Code.Jexpr.E_field (Code.Jexpr.E_name "a", "b"), "c"));
            ("0.5", Code.Jexpr.E_double 0.5);
            ("5.0", Code.Jexpr.E_double 5.0);
          ]
        in
        List.iter
          (fun (src, expected) ->
            check cb src true (Code.Jparser.parse_expr src = expected))
          cases);
    Alcotest.test_case "cast vs parenthesized expression" `Quick (fun () ->
        check cb "paren expr" true
          (Code.Jparser.parse_expr "(a) + 1"
          = Code.Jexpr.E_binary ("+", Code.Jexpr.E_name "a", Code.Jexpr.E_int 1));
        check cb "cast named" true
          (Code.Jparser.parse_expr "((Account) x).f()"
          = Code.Jexpr.E_call
              (Some (Code.Jexpr.E_cast (Code.Jtype.T_named "Account", Code.Jexpr.E_name "x")),
               "f", [])));
    Alcotest.test_case "statement golden parses" `Quick (fun () ->
        check cb "local with init" true
          (Code.Jparser.parse_stmt "TransactionManager tx = TransactionManager.current();"
          = Code.Jstmt.S_local
              ( Code.Jtype.T_named "TransactionManager",
                "tx",
                Some
                  (Code.Jexpr.E_call
                     (Some (Code.Jexpr.E_name "TransactionManager"), "current", [])) ));
        check cb "comment" true
          (Code.Jparser.parse_stmt "// TODO: implement"
          = Code.Jstmt.S_comment "TODO: implement");
        check cb "sync" true
          (match Code.Jparser.parse_stmt "synchronized (this) { return; }" with
          | Code.Jstmt.S_sync (Code.Jexpr.E_this, [ Code.Jstmt.S_return None ]) -> true
          | _ -> false);
        check cb "try/catch/finally" true
          (match
             Code.Jparser.parse_stmt
               "try { f(); } catch (Exception e) { g(); } finally { h(); }"
           with
          | Code.Jstmt.S_try ([ _ ], [ (Code.Jtype.T_named "Exception", "e", [ _ ]) ], [ _ ]) ->
              true
          | _ -> false));
    Alcotest.test_case "statement round trips through the printer" `Quick
      (fun () ->
        List.iter
          (fun stmt ->
            let text = Code.Printer.stmt_to_string stmt in
            check cb text true (Code.Jparser.parse_stmt text = stmt))
          [
            Code.Jstmt.S_if
              ( Code.Jexpr.E_binary ("<", Code.Jexpr.E_name "a", Code.Jexpr.E_int 2),
                [ Code.Jstmt.S_return (Some (Code.Jexpr.E_bool true)) ],
                [ Code.Jstmt.S_throw (Code.Jexpr.E_new ("Error", [])) ] );
            Code.Jstmt.S_while
              ( Code.Jexpr.E_bool true,
                [ Code.Jstmt.S_expr (Code.Jexpr.E_call (None, "step", [])) ] );
            Code.Jstmt.S_block [ Code.Jstmt.S_comment "inner" ];
            Code.Jstmt.S_local (Code.Jtype.T_list Code.Jtype.T_int, "xs", None);
          ]);
    Alcotest.test_case "generated banking unit round trips" `Quick (fun () ->
        let program = Code.Generator.generate (Fixtures.banking ()) in
        List.iter
          (fun u -> check cb u.Code.Junit.package true (roundtrip_unit u))
          program);
    Alcotest.test_case "enum constant class round trips" `Quick (fun () ->
        let m = Mof.Model.create ~name:"p" in
        let m, _ =
          Mof.Builder.add_enumeration m ~owner:(Mof.Model.root m)
            ~name:"Currency" ~literals:[ "CHF"; "EUR" ]
        in
        List.iter
          (fun u -> check cb "unit" true (roundtrip_unit u))
          (Code.Generator.generate m));
    Alcotest.test_case "woven program round trips" `Quick (fun () ->
        let project = Core.Project.create (Fixtures.banking ()) in
        let project =
          match
            Core.Pipeline.refine project ~concern:"transactions"
              ~params:
                [
                  ( "transactional",
                    Transform.Params.V_list [ Transform.Params.V_ident "Account" ] );
                ]
          with
          | Ok (p, _) -> p
          | Error e -> Alcotest.fail (Core.Pipeline.error_to_string e)
        in
        let woven =
          (Result.get_ok (Core.Pipeline.build project)).Core.Artifacts.woven
        in
        List.iter
          (fun u -> check cb u.Code.Junit.package true (roundtrip_unit u))
          woven);
    Alcotest.test_case "parse errors are reported" `Quick (fun () ->
        List.iter
          (fun src ->
            check cb src true (Result.is_error (Code.Jparser.parse_unit_opt src)))
          [
            "";
            "class C {}";
            "package p; class C {";
            "package p; class C { int 5x; }";
            "package p; enum E {}";
          ]);
  ]

let parser_properties =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck2.Test.make ~name:"generated code always round trips" ~count:40
        Gen.model_gen (fun m ->
          List.for_all roundtrip_unit (Code.Generator.generate m));
    ]

let () =
  Alcotest.run "code"
    [
      ("jtype", jtype_tests);
      ("traversals", traversal_tests);
      ("decls", decl_tests);
      ("generator", generator_tests);
      ("printer", printer_tests);
      ("parser", parser_tests @ parser_properties);
    ]
