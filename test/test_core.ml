(* Tests for the core pipeline: levels, platform projection, projects,
   refinement, undo, artifact builds, and the monolithic ablation. *)

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let v_names names =
  Transform.Params.V_list (List.map (fun n -> Transform.Params.V_ident n) names)

let refine_exn project ~concern ~params =
  match Core.Pipeline.refine project ~concern ~params with
  | Ok (project, report) -> (project, report)
  | Error e -> Alcotest.fail (Core.Pipeline.error_to_string e)

(* the Fig. 2 project: banking + distribution + transactions + security *)
let fig2_project () =
  let project = Core.Project.create (Fixtures.banking ()) in
  let project, _ =
    refine_exn project ~concern:"distribution"
      ~params:[ ("remote", v_names [ "Account"; "Teller" ]) ]
  in
  let project, _ =
    refine_exn project ~concern:"transactions"
      ~params:[ ("transactional", v_names [ "Account" ]) ]
  in
  let project, _ =
    refine_exn project ~concern:"security"
      ~params:[ ("secured", v_names [ "Teller" ]) ]
  in
  project

(* ---- level -------------------------------------------------------------- *)

let level_tests =
  [
    Alcotest.test_case "mark and read back" `Quick (fun () ->
        let m = Fixtures.banking () in
        check cb "unmarked" true (Core.Level.of_model m = None);
        let m = Core.Level.mark Core.Level.Pim m in
        check cb "pim" true (Core.Level.is_pim m);
        let m = Core.Level.mark (Core.Level.Psm "corba") m in
        check cb "psm" true (Core.Level.of_model m = Some (Core.Level.Psm "corba"));
        check cs "rendering" "PSM(corba)"
          (Core.Level.to_string (Core.Level.Psm "corba")));
  ]

(* ---- platform projection -------------------------------------------------- *)

let platform_tests =
  [
    Alcotest.test_case "requires a PIM" `Quick (fun () ->
        let cmt =
          Transform.Cmt.specialize_exn Core.Platform.transformation
            [ ("platform", Transform.Params.V_string "corba") ]
        in
        match Transform.Engine.apply cmt (Fixtures.banking ()) with
        | Error (Transform.Engine.Precondition_failed _) -> ()
        | _ -> Alcotest.fail "unmarked model should be refused");
    Alcotest.test_case "projects a PIM to a stereotyped PSM" `Quick (fun () ->
        let m = Core.Level.mark Core.Level.Pim (Fixtures.banking ()) in
        let cmt =
          Transform.Cmt.specialize_exn Core.Platform.transformation
            [ ("platform", Transform.Params.V_string "j2ee") ]
        in
        match Transform.Engine.apply cmt m with
        | Ok outcome ->
            let psm = outcome.Transform.Engine.model in
            check cb "level" true
              (Core.Level.of_model psm = Some (Core.Level.Psm "j2ee"));
            check cb "ejb stereotype" true
              (List.for_all
                 (Mof.Element.has_stereotype "ejb")
                 (Mof.Query.classes psm))
        | Error f ->
            Alcotest.fail (Format.asprintf "%a" Transform.Engine.pp_failure f));
    Alcotest.test_case "infrastructure classes are not stereotyped" `Quick
      (fun () ->
        let m = Core.Level.mark Core.Level.Pim (Fixtures.banking ()) in
        let m, infra = Mof.Builder.add_class m ~owner:(Mof.Model.root m) ~name:"Infra" in
        let m = Mof.Builder.add_stereotype m infra "infrastructure" in
        let cmt =
          Transform.Cmt.specialize_exn Core.Platform.transformation
            [ ("platform", Transform.Params.V_string "corba") ]
        in
        match Transform.Engine.apply cmt m with
        | Ok outcome ->
            check cb "skipped" false
              (Mof.Element.has_stereotype "corba-servant"
                 (Mof.Model.find_exn outcome.Transform.Engine.model infra))
        | Error f ->
            Alcotest.fail (Format.asprintf "%a" Transform.Engine.pp_failure f));
    Alcotest.test_case "stereotype_for covers every platform" `Quick (fun () ->
        List.iter
          (fun p ->
            check cb p true (String.length (Core.Platform.stereotype_for p) > 0))
          Core.Platform.platforms);
    Alcotest.test_case "ensure_registered is idempotent" `Quick (fun () ->
        Core.Platform.ensure_registered ();
        Core.Platform.ensure_registered ();
        check cb "registered" true (Concerns.Registry.find "platform" <> None));
  ]

(* ---- project / pipeline ------------------------------------------------------ *)

let pipeline_tests =
  [
    Alcotest.test_case "create marks the PIM and commits it" `Quick (fun () ->
        let project = Core.Project.create (Fixtures.banking ()) in
        check cb "pim" true (Core.Level.is_pim (Core.Project.model project));
        check cb "history has the root" true
          (contains (Core.Project.history project) "initial model"));
    Alcotest.test_case "unknown concern refused" `Quick (fun () ->
        let project = Core.Project.create (Fixtures.banking ()) in
        check cb "error" true
          (Result.is_error (Core.Pipeline.refine project ~concern:"nope" ~params:[])));
    Alcotest.test_case "parameter problems refused" `Quick (fun () ->
        let project = Core.Project.create (Fixtures.banking ()) in
        match Core.Pipeline.refine project ~concern:"distribution" ~params:[] with
        | Error e ->
            let msg = Core.Pipeline.error_to_string e in
            check cb "mentions the parameter" true (contains msg "remote")
        | Ok _ -> Alcotest.fail "should fail");
    Alcotest.test_case "workflow violations refused" `Quick (fun () ->
        let project =
          Core.Project.create ~workflow:Workflow.State.middleware_default
            (Fixtures.banking ())
        in
        match
          Core.Pipeline.refine project ~concern:"security"
            ~params:[ ("secured", v_names [ "Teller" ]) ]
        with
        | Error e ->
            let msg = Core.Pipeline.error_to_string e in
            check cb "mentions the step" true (contains msg "distribute")
        | Ok _ -> Alcotest.fail "should fail");
    Alcotest.test_case "refinement updates model, trace, and repository" `Quick
      (fun () ->
        let project = fig2_project () in
        check ci "three applied" 3 (List.length (Core.Project.applied project));
        check ci "trace entries" 3
          (Transform.Trace.length (Core.Project.trace project));
        check cb "repo head refined" true
          (contains (Core.Project.history project) "apply T.security");
        check (Alcotest.list cs) "concern order"
          [ "distribution"; "transactions"; "security" ]
          (Transform.Trace.concerns_applied (Core.Project.trace project)));
    Alcotest.test_case "coloring demarcates the concern spaces" `Quick
      (fun () ->
        let text = Core.Project.coloring (fig2_project ()) in
        check cb "red distribution" true (contains text "[red] Class AccountProxy");
        check cb "legend" true (contains text "red — distribution");
        check cb "functional unmarked" true (contains text "\nClass Account"));
    Alcotest.test_case "undo reverts model, trace, and repository" `Quick
      (fun () ->
        let project = fig2_project () in
        let project' = Option.get (Core.Pipeline.undo project) in
        check ci "two applied" 2 (List.length (Core.Project.applied project'));
        check ci "trace shrank" 2
          (Transform.Trace.length (Core.Project.trace project'));
        check cb "secured gone" true
          (Mof.Query.with_stereotype (Core.Project.model project') "secured" = []);
        check cb "redo target" true
          (match Core.Pipeline.redo_info project' with
          | Some msg -> contains msg "T.security"
          | None -> false));
    Alcotest.test_case "undo on a fresh project is None" `Quick (fun () ->
        let project = Core.Project.create (Fixtures.banking ()) in
        check cb "none" true (Core.Pipeline.undo project = None);
        check cb "no redo either" true (Core.Pipeline.redo_info project = None));
    Alcotest.test_case "undo rebuilds workflow progress" `Quick (fun () ->
        let project =
          Core.Project.create ~workflow:Workflow.State.middleware_default
            (Fixtures.banking ())
        in
        let project, _ =
          refine_exn project ~concern:"distribution"
            ~params:[ ("remote", v_names [ "Account" ]) ]
        in
        let project, _ =
          refine_exn project ~concern:"transactions"
            ~params:[ ("transactional", v_names [ "Account" ]) ]
        in
        let project' = Option.get (Core.Pipeline.undo project) in
        match project'.Core.Project.progress with
        | Some p ->
            check (Alcotest.list cs) "replayed" [ "distribution" ]
              (Workflow.State.applied_concerns p)
        | None -> Alcotest.fail "progress lost");
  ]

(* ---- artifacts ------------------------------------------------------------------ *)

let artifact_tests =
  [
    Alcotest.test_case "functional code excludes concern elements" `Quick
      (fun () ->
        let project = fig2_project () in
        let functional = Core.Pipeline.functional_code project in
        check cb "no proxy" true (Code.Junit.find_class functional "AccountProxy" = None);
        check cb "no naming service" true
          (Code.Junit.find_class functional "NamingService" = None);
        check cb "no remote interface" true
          (Code.Junit.find_interface functional "AccountRemote" = None);
        check cb "functional classes present" true
          (Code.Junit.find_class functional "Account" <> None));
    Alcotest.test_case "monolithic code includes everything" `Quick (fun () ->
        let project = fig2_project () in
        let monolithic = Core.Pipeline.monolithic_code project in
        check cb "proxy present" true
          (Code.Junit.find_class monolithic "AccountProxy" <> None);
        check cb "manager present" true
          (Code.Junit.find_class monolithic "TransactionManager" <> None));
    Alcotest.test_case "one aspect per transformation, in order" `Quick
      (fun () ->
        let project = fig2_project () in
        match Core.Pipeline.aspects project with
        | Ok generated ->
            check (Alcotest.list cs) "names"
              [ "DistributionAspect"; "TransactionAspect"; "SecurityAspect" ]
              (List.map
                 (fun g -> g.Aspects.Generator.aspect.Aspects.Aspect.aspect_name)
                 generated);
            check (Alcotest.list ci) "seqs" [ 1; 2; 3 ]
              (List.map (fun g -> g.Aspects.Generator.seq) generated)
        | Error e -> Alcotest.fail (Core.Pipeline.error_to_string e));
    Alcotest.test_case "build weaves with transformation-order precedence"
      `Quick (fun () ->
        let project = fig2_project () in
        match Core.Pipeline.build project with
        | Ok artifacts ->
            check ci "three aspects" 3 (List.length artifacts.Core.Artifacts.generated_aspects);
            check cb "applications recorded" true
              (artifacts.Core.Artifacts.applications <> []);
            (* distribution (seq 1) outermost: the export call is the first
               statement of Account.withdraw, before the tx around advice *)
            (match Code.Junit.find_class artifacts.Core.Artifacts.woven "Account" with
            | Some c -> (
                match Code.Jdecl.find_method c "withdraw" with
                | Some { Code.Jdecl.body = Some (first :: _); _ } ->
                    check cb "export first" true
                      (contains (Code.Printer.stmt_to_string first) "RemoteRuntime.ensureExported")
                | _ -> Alcotest.fail "withdraw body missing")
            | None -> Alcotest.fail "Account missing");
            check cb "precedence listing" true
              (contains
                 (Core.Artifacts.precedence_listing artifacts)
                 "1. DistributionAspect")
        | Error e -> Alcotest.fail (Core.Pipeline.error_to_string e));
    Alcotest.test_case "functional code is invariant under reconfiguration"
      `Quick (fun () ->
        (* change the security parameters: functional code must not change *)
        let p1 = fig2_project () in
        let p2 = Option.get (Core.Pipeline.undo p1) in
        let p2, _ =
          refine_exn p2 ~concern:"security"
            ~params:
              [
                ("secured", v_names [ "Teller" ]);
                ( "roles",
                  Transform.Params.V_list [ Transform.Params.V_string "auditor" ] );
              ]
        in
        let a1 = Result.get_ok (Core.Pipeline.build p1) in
        let a2 = Result.get_ok (Core.Pipeline.build p2) in
        check cb "functional equal" true
          (Code.Junit.equal a1.Core.Artifacts.functional a2.Core.Artifacts.functional);
        check cb "woven differs" false
          (Code.Junit.equal a1.Core.Artifacts.woven a2.Core.Artifacts.woven));
    Alcotest.test_case "summary and renderings" `Quick (fun () ->
        let artifacts = Result.get_ok (Core.Pipeline.build (fig2_project ())) in
        check cb "summary mentions aspects" true
          (contains (Core.Artifacts.summary artifacts) "3 aspect(s)");
        check cb "aspect source" true
          (contains (Core.Artifacts.render_aspects artifacts) "public aspect TransactionAspect");
        check cb "woven source" true
          (contains (Core.Artifacts.render_woven artifacts) "tx.begin(\"serializable\""));
    Alcotest.test_case "write_to_dir produces the artifact files" `Quick
      (fun () ->
        let artifacts = Result.get_ok (Core.Pipeline.build (fig2_project ())) in
        let dir =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "mdweave-artifacts-%d" (Unix.getpid ()))
        in
        Fun.protect
          ~finally:(fun () ->
            if Sys.file_exists dir then begin
              Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
              Sys.rmdir dir
            end)
          (fun () ->
            Core.Artifacts.write_to_dir dir artifacts;
            List.iter
              (fun f ->
                check cb f true (Sys.file_exists (Filename.concat dir f)))
              [ "functional.java"; "aspects.aj"; "woven.java"; "BUILD-REPORT.txt" ]));
  ]

let interference_artifact_tests =
  [
    Alcotest.test_case "fig2 interference: Account shared between concerns"
      `Quick (fun () ->
        let artifacts = Result.get_ok (Core.Pipeline.build (fig2_project ())) in
        let report = Core.Artifacts.interference artifacts in
        (* Account methods carry distribution (before) and transactions
           (around); Teller methods carry distribution and security *)
        check cb "some sharing" true (report.Weaver.Interference.shared <> []);
        let shared_describes =
          List.map
            (fun (e : Weaver.Interference.entry) ->
              Weaver.Joinpoint.describe e.Weaver.Interference.at)
            report.Weaver.Interference.shared
        in
        check cb "deposit shared" true
          (List.mem "execution(Account.deposit)" shared_describes);
        check cb "transfer shared" true
          (List.mem "execution(Teller.transfer)" shared_describes);
        (* precedence order within a shared entry matches transformation order *)
        let deposit =
          List.find
            (fun (e : Weaver.Interference.entry) ->
              Weaver.Joinpoint.describe e.Weaver.Interference.at
              = "execution(Account.deposit)")
            report.Weaver.Interference.shared
        in
        check (Alcotest.list cs) "order" [ "distribution"; "transactions" ]
          (List.map
             (fun (a : Weaver.Interference.advising) ->
               a.Weaver.Interference.concern)
             deposit.Weaver.Interference.advisers));
    Alcotest.test_case "BUILD-REPORT includes the interference analysis" `Quick
      (fun () ->
        let artifacts = Result.get_ok (Core.Pipeline.build (fig2_project ())) in
        let text =
          Weaver.Interference.render (Core.Artifacts.interference artifacts)
        in
        check cb "marked" true (contains text "[!] execution(Account.deposit)"));
  ]

(* ---- shipping ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mdweave-ship-%d-%d" (Unix.getpid ()) (Random.int 100000))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let shipping_tests =
  [
    Alcotest.test_case "manifest records concerns and parameters" `Quick
      (fun () ->
        let manifest =
          Result.get_ok (Core.Shipping.manifest_of (fig2_project ()))
        in
        List.iter
          (fun needle -> check cb needle true (contains manifest needle))
          [
            "step\tdistribution\tremote=Account,Teller";
            "step\ttransactions\ttransactional=Account";
            "step\tsecurity\tsecured=Teller";
            "isolation=serializable";
          ]);
    Alcotest.test_case "ship writes every version plus the manifest" `Quick
      (fun () ->
        with_temp_dir (fun dir ->
            Result.get_ok (Core.Shipping.ship ~dir (fig2_project ()));
            List.iter
              (fun f -> check cb f true (Sys.file_exists (Filename.concat dir f)))
              [
                "initial.xmi";
                "step-1.xmi";
                "step-2.xmi";
                "step-3.xmi";
                "final.xmi";
                "MANIFEST";
              ]));
    Alcotest.test_case "replay reproduces the shipped final model" `Quick
      (fun () ->
        with_temp_dir (fun dir ->
            Result.get_ok (Core.Shipping.ship ~dir (fig2_project ()));
            check cb "verified" true (Result.get_ok (Core.Shipping.verify ~dir))));
    Alcotest.test_case "replayed project can keep refining" `Quick (fun () ->
        with_temp_dir (fun dir ->
            Result.get_ok (Core.Shipping.ship ~dir (fig2_project ()));
            let project = Result.get_ok (Core.Shipping.replay ~dir) in
            match
              Core.Pipeline.refine project ~concern:"logging"
                ~params:
                  [
                    ( "targets",
                      Transform.Params.V_list [ Transform.Params.V_string "*" ] );
                  ]
            with
            | Ok _ -> ()
            | Error e -> Alcotest.fail (Core.Pipeline.error_to_string e)));
    Alcotest.test_case "manifest parsing rejects malformed lines" `Quick
      (fun () ->
        check cb "bad keyword" true
          (Result.is_error (Core.Shipping.load_manifest "frob\tx\ty=1"));
        check cb "missing equals" true
          (Result.is_error (Core.Shipping.load_manifest "step\tsecurity\troles")));
    Alcotest.test_case "unshippable values are refused, not mangled" `Quick
      (fun () ->
        check cb "tab" true
          (Result.is_error
             (Core.Shipping.to_wizard_text (Transform.Params.V_string "a\tb")));
        check cb "comma in list item" true
          (Result.is_error
             (Core.Shipping.to_wizard_text
                (Transform.Params.V_list [ Transform.Params.V_string "a,b" ])));
        check cb "plain ok" true
          (Core.Shipping.to_wizard_text (Transform.Params.V_string "plain")
          = Ok "plain"));
    Alcotest.test_case "replay fails cleanly on an unknown concern" `Quick
      (fun () ->
        with_temp_dir (fun dir ->
            Result.get_ok (Core.Shipping.ship ~dir (fig2_project ()));
            let path = Filename.concat dir "MANIFEST" in
            let oc = open_out_gen [ Open_append ] 0o644 path in
            output_string oc "step\tghost-concern\tx=1\n";
            close_out oc;
            match Core.Shipping.replay ~dir with
            | Error msg -> check cb "names it" true (contains msg "ghost-concern")
            | Ok _ -> Alcotest.fail "should fail"));
  ]

let () =
  Alcotest.run "core"
    [
      ("level", level_tests);
      ("platform", platform_tests);
      ("pipeline", pipeline_tests);
      ("artifacts", artifact_tests @ interference_artifact_tests);
      ("shipping", shipping_tests);
    ]
