(* Tests for the code-model interpreter, and — through it — behavioural
   tests of the woven pipeline: the event traces that the middleware
   runtime records must show each concern's advice firing in
   transformation-precedence order, committing on success and rolling back
   on injected faults. *)

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

let v_names names =
  Transform.Params.V_list (List.map (fun n -> Transform.Params.V_ident n) names)

let refine_exn project ~concern ~params =
  match Core.Pipeline.refine project ~concern ~params with
  | Ok (project, _) -> project
  | Error e -> Alcotest.fail (Core.Pipeline.error_to_string e)

let fig2_project () =
  let project = Core.Project.create (Fixtures.banking ()) in
  let project =
    refine_exn project ~concern:"distribution"
      ~params:[ ("remote", v_names [ "Account"; "Teller" ]) ]
  in
  let project =
    refine_exn project ~concern:"transactions"
      ~params:[ ("transactional", v_names [ "Account" ]) ]
  in
  refine_exn project ~concern:"security"
    ~params:[ ("secured", v_names [ "Teller" ]) ]

let fig2_woven () =
  match Core.Pipeline.build (fig2_project ()) with
  | Ok artifacts -> artifacts.Core.Artifacts.woven
  | Error e -> Alcotest.fail (Core.Pipeline.error_to_string e)

let event_sigs events =
  List.map (fun (e : Interp.Event.t) -> e.Interp.Event.source ^ "." ^ e.Interp.Event.action) events

(* ---- plain interpretation (no aspects) ----------------------------------- *)

let mk_method ?(params = []) ?(return_type = Code.Jtype.T_void) name body =
  {
    Code.Jdecl.method_name = name;
    method_mods = [ Code.Jdecl.M_public ];
    return_type;
    params;
    throws = [];
    body = Some body;
  }

let one_class_program methods fields =
  [
    Code.Junit.unit_ ~package:"t"
      [
        Code.Jdecl.Class
          {
            Code.Jdecl.class_name = "T";
            class_mods = [ Code.Jdecl.M_public ];
            extends = None;
            implements = [];
            fields;
            methods;
          };
      ];
  ]

let int_field name =
  {
    Code.Jdecl.field_name = name;
    field_type = Code.Jtype.T_int;
    field_mods = [ Code.Jdecl.M_private ];
    field_init = None;
  }

let basics_tests =
  [
    Alcotest.test_case "generated accessors round trip through the heap"
      `Quick (fun () ->
        let program = Code.Generator.generate (Fixtures.banking ()) in
        let st = Interp.Machine.create program in
        let acct = Interp.Machine.new_object st "Account" in
        ignore
          (Interp.Machine.call st ~recv:acct "setBalance"
             [ Interp.Rvalue.V_double 75.5 ]);
        check cb "read back" true
          (Interp.Machine.call st ~recv:acct "getBalance" []
          = Interp.Rvalue.V_double 75.5));
    Alcotest.test_case "arithmetic, locals, and control flow" `Quick (fun () ->
        (* int f(int n) { int acc = 0; while (n > 0) { acc = acc + n; n = n - 1; } return acc; } *)
        let n = Code.Jexpr.E_name "n" and acc = Code.Jexpr.E_name "acc" in
        let body =
          [
            Code.Jstmt.S_local (Code.Jtype.T_int, "acc", Some (Code.Jexpr.E_int 0));
            Code.Jstmt.S_while
              ( Code.Jexpr.E_binary (">", n, Code.Jexpr.E_int 0),
                [
                  Code.Jstmt.S_expr
                    (Code.Jexpr.E_assign (acc, Code.Jexpr.E_binary ("+", acc, n)));
                  Code.Jstmt.S_expr
                    (Code.Jexpr.E_assign
                       (n, Code.Jexpr.E_binary ("-", n, Code.Jexpr.E_int 1)));
                ] );
            Code.Jstmt.S_return (Some acc);
          ]
        in
        let program =
          one_class_program
            [
              mk_method
                ~params:[ { Code.Jdecl.param_name = "n"; param_type = Code.Jtype.T_int } ]
                ~return_type:Code.Jtype.T_int "sum" body;
            ]
            []
        in
        let outcome =
          Interp.Machine.run program ~class_name:"T" ~method_name:"sum"
            ~args:[ Interp.Rvalue.V_int 5 ]
        in
        check cb "15" true (outcome.Interp.Machine.result = Ok (Interp.Rvalue.V_int 15)));
    Alcotest.test_case "field assignment through this" `Quick (fun () ->
        let body =
          [
            Code.Jstmt.S_expr
              (Code.Jexpr.E_assign
                 ( Code.Jexpr.E_field (Code.Jexpr.E_this, "state"),
                   Code.Jexpr.E_int 42 ));
            Code.Jstmt.S_return
              (Some (Code.Jexpr.E_field (Code.Jexpr.E_this, "state")));
          ]
        in
        let program =
          one_class_program
            [ mk_method ~return_type:Code.Jtype.T_int "poke" body ]
            [ int_field "state" ]
        in
        let outcome = Interp.Machine.run program ~class_name:"T" ~method_name:"poke" in
        check cb "42" true (outcome.Interp.Machine.result = Ok (Interp.Rvalue.V_int 42)));
    Alcotest.test_case "exceptions: catch then finally; uncaught escapes"
      `Quick (fun () ->
        (* try { throw new RuntimeException(); } catch (Exception e) { state = 1; } finally { state2 = 2; } *)
        let set f v =
          Code.Jstmt.S_expr
            (Code.Jexpr.E_assign
               (Code.Jexpr.E_field (Code.Jexpr.E_this, f), Code.Jexpr.E_int v))
        in
        let body =
          [
            Code.Jstmt.S_try
              ( [ Code.Jstmt.S_throw (Code.Jexpr.E_new ("RuntimeException", [])) ],
                [ (Code.Jtype.T_named "Exception", "e", [ set "a" 1 ]) ],
                [ set "b" 2 ] );
            Code.Jstmt.S_return
              (Some
                 (Code.Jexpr.E_binary
                    ( "+",
                      Code.Jexpr.E_field (Code.Jexpr.E_this, "a"),
                      Code.Jexpr.E_field (Code.Jexpr.E_this, "b") )));
          ]
        in
        let program =
          one_class_program
            [ mk_method ~return_type:Code.Jtype.T_int "go" body ]
            [ int_field "a"; int_field "b" ]
        in
        let outcome = Interp.Machine.run program ~class_name:"T" ~method_name:"go" in
        check cb "handled and finalized" true
          (outcome.Interp.Machine.result = Ok (Interp.Rvalue.V_int 3));
        (* uncaught: no handler for a mismatching class *)
        let body2 =
          [
            Code.Jstmt.S_throw (Code.Jexpr.E_new ("RuntimeException", []));
          ]
        in
        let program2 = one_class_program [ mk_method "boom" body2 ] [] in
        let outcome2 = Interp.Machine.run program2 ~class_name:"T" ~method_name:"boom" in
        check cb "escapes" true
          (outcome2.Interp.Machine.result = Error "RuntimeException"));
    Alcotest.test_case "synchronized blocks record monitor events" `Quick
      (fun () ->
        let body =
          [ Code.Jstmt.S_sync (Code.Jexpr.E_this, [ Code.Jstmt.S_comment "cs" ]) ]
        in
        let program = one_class_program [ mk_method "locked" body ] [] in
        let outcome = Interp.Machine.run program ~class_name:"T" ~method_name:"locked" in
        check (Alcotest.list cs) "enter/exit"
          [ "Monitor.enter"; "Monitor.exit" ]
          (event_sigs outcome.Interp.Machine.events));
    Alcotest.test_case "string concatenation" `Quick (fun () ->
        let body =
          [
            Code.Jstmt.S_return
              (Some
                 (Code.Jexpr.E_binary
                    ("+", Code.Jexpr.E_string "n=", Code.Jexpr.E_int 7)));
          ]
        in
        let program =
          one_class_program [ mk_method ~return_type:Code.Jtype.T_string "s" body ] []
        in
        let outcome = Interp.Machine.run program ~class_name:"T" ~method_name:"s" in
        check cb "concat" true
          (outcome.Interp.Machine.result = Ok (Interp.Rvalue.V_string "n=7")));
    Alcotest.test_case "virtual dispatch along extends" `Quick (fun () ->
        let base =
          {
            Code.Jdecl.class_name = "Base";
            class_mods = [];
            extends = None;
            implements = [];
            fields = [];
            methods = [ mk_method ~return_type:Code.Jtype.T_int "id" [ Code.Jstmt.S_return (Some (Code.Jexpr.E_int 1)) ] ];
          }
        in
        let derived =
          {
            Code.Jdecl.class_name = "Derived";
            class_mods = [];
            extends = Some "Base";
            implements = [];
            fields = [];
            methods = [];
          }
        in
        let program =
          [ Code.Junit.unit_ ~package:"t" [ Code.Jdecl.Class base; Code.Jdecl.Class derived ] ]
        in
        let outcome = Interp.Machine.run program ~class_name:"Derived" ~method_name:"id" in
        check cb "inherited" true
          (outcome.Interp.Machine.result = Ok (Interp.Rvalue.V_int 1)));
    Alcotest.test_case "null dereference surfaces as RuntimeException" `Quick
      (fun () ->
        let body =
          [
            Code.Jstmt.S_local (Code.Jtype.T_named "T", "x", Some Code.Jexpr.E_null);
            Code.Jstmt.S_expr
              (Code.Jexpr.E_call (Some (Code.Jexpr.E_name "x"), "run", []));
          ]
        in
        let program = one_class_program [ mk_method "npe" body ] [] in
        let outcome = Interp.Machine.run program ~class_name:"T" ~method_name:"npe" in
        check cb "thrown" true
          (outcome.Interp.Machine.result = Error "RuntimeException"));
    Alcotest.test_case "instanceof and cast at runtime" `Quick (fun () ->
        let body =
          [
            Code.Jstmt.S_return
              (Some
                 (Code.Jexpr.E_binary
                    ( "&&",
                      Code.Jexpr.E_instanceof (Code.Jexpr.E_this, "T"),
                      Code.Jexpr.E_binary
                        ( "==",
                          Code.Jexpr.E_cast (Code.Jtype.T_named "T", Code.Jexpr.E_this),
                          Code.Jexpr.E_this ) )));
          ]
        in
        let program =
          one_class_program [ mk_method ~return_type:Code.Jtype.T_boolean "check" body ] []
        in
        let outcome = Interp.Machine.run program ~class_name:"T" ~method_name:"check" in
        check cb "true" true
          (outcome.Interp.Machine.result = Ok (Interp.Rvalue.V_bool true)));
    Alcotest.test_case "finally runs even when the body returns" `Quick
      (fun () ->
        (* try { return 1; } finally { Logger.log("x","fin"); } *)
        let body =
          [
            Code.Jstmt.S_try
              ( [ Code.Jstmt.S_return (Some (Code.Jexpr.E_int 1)) ],
                [],
                [
                  Code.Jstmt.S_expr
                    (Code.Jexpr.E_call
                       ( Some (Code.Jexpr.E_name "Logger"),
                         "log",
                         [ Code.Jexpr.E_string "x"; Code.Jexpr.E_string "fin" ] ));
                ] );
          ]
        in
        let program =
          one_class_program [ mk_method ~return_type:Code.Jtype.T_int "go" body ] []
        in
        let outcome = Interp.Machine.run program ~class_name:"T" ~method_name:"go" in
        check cb "returned" true (outcome.Interp.Machine.result = Ok (Interp.Rvalue.V_int 1));
        check (Alcotest.list cs) "finally logged" [ "Logger.log" ]
          (event_sigs outcome.Interp.Machine.events));
    Alcotest.test_case "calls chain through helper objects" `Quick (fun () ->
        (* T.outer() { Helper h = new Helper(); return h.triple(7); } *)
        let helper =
          {
            Code.Jdecl.class_name = "Helper";
            class_mods = [];
            extends = None;
            implements = [];
            fields = [];
            methods =
              [
                mk_method
                  ~params:[ { Code.Jdecl.param_name = "n"; param_type = Code.Jtype.T_int } ]
                  ~return_type:Code.Jtype.T_int "triple"
                  [
                    Code.Jstmt.S_return
                      (Some
                         (Code.Jexpr.E_binary
                            ("*", Code.Jexpr.E_name "n", Code.Jexpr.E_int 3)));
                  ];
              ];
          }
        in
        let outer =
          mk_method ~return_type:Code.Jtype.T_int "outer"
            [
              Code.Jstmt.S_local
                ( Code.Jtype.T_named "Helper",
                  "h",
                  Some (Code.Jexpr.E_new ("Helper", [])) );
              Code.Jstmt.S_return
                (Some
                   (Code.Jexpr.E_call
                      (Some (Code.Jexpr.E_name "h"), "triple", [ Code.Jexpr.E_int 7 ])));
            ]
        in
        let program =
          [
            Code.Junit.unit_ ~package:"t"
              [
                Code.Jdecl.Class
                  {
                    Code.Jdecl.class_name = "T";
                    class_mods = [];
                    extends = None;
                    implements = [];
                    fields = [];
                    methods = [ outer ];
                  };
                Code.Jdecl.Class helper;
              ];
          ]
        in
        let outcome = Interp.Machine.run program ~class_name:"T" ~method_name:"outer" in
        check cb "21" true (outcome.Interp.Machine.result = Ok (Interp.Rvalue.V_int 21)));
    Alcotest.test_case "unknown method is a runtime error, not a Java throw"
      `Quick (fun () ->
        let program = one_class_program [ mk_method "x" [] ] [] in
        check cb "raises" true
          (try
             ignore (Interp.Machine.run program ~class_name:"T" ~method_name:"nope");
             false
           with Interp.Machine.Runtime_error _ -> true));
  ]

(* ---- behavioural closure of Fig. 2 ----------------------------------------- *)

let woven_tests =
  [
    Alcotest.test_case
      "woven Account.deposit: export, begin, commit — in precedence order"
      `Quick (fun () ->
        let outcome =
          Interp.Machine.run (fig2_woven ()) ~class_name:"Account"
            ~method_name:"deposit"
            ~args:[ Interp.Rvalue.V_double 10.0 ]
        in
        check cb "completed" true (outcome.Interp.Machine.result = Ok Interp.Rvalue.V_null);
        check (Alcotest.list cs) "event order"
          [
            "RemoteRuntime.ensureExported";
            "TransactionManager.begin";
            "TransactionManager.commit";
          ]
          (event_sigs outcome.Interp.Machine.events));
    Alcotest.test_case
      "woven Teller.transfer: distribution advice precedes security advice"
      `Quick (fun () ->
        let outcome =
          Interp.Machine.run (fig2_woven ()) ~class_name:"Teller"
            ~method_name:"transfer"
            ~args:
              [ Interp.Rvalue.V_null; Interp.Rvalue.V_null; Interp.Rvalue.V_double 1.0 ]
        in
        check (Alcotest.list cs) "event order"
          [
            "RemoteRuntime.ensureExported";
            "SecurityContext.currentPrincipal";
            "AccessController.check";
          ]
          (event_sigs outcome.Interp.Machine.events));
    Alcotest.test_case "unwoven functional code emits no middleware events"
      `Quick (fun () ->
        let functional = Core.Pipeline.functional_code (fig2_project ()) in
        let outcome =
          Interp.Machine.run functional ~class_name:"Account" ~method_name:"deposit"
            ~args:[ Interp.Rvalue.V_double 10.0 ]
        in
        check ci "silent" 0 (List.length outcome.Interp.Machine.events));
    Alcotest.test_case "injected fault rolls the transaction back" `Quick
      (fun () ->
        (* make deposit call an auditing helper, inject the fault there: the
           transaction aspect must roll back instead of committing *)
        let woven =
          let project = fig2_project () in
          let functional = Core.Pipeline.functional_code project in
          let functional =
            Code.Junit.update_class functional "Account"
              (fun c ->
                let c =
                  Code.Jdecl.add_method
                    (mk_method "audit" [ Code.Jstmt.S_comment "audit" ])
                    c
                in
                Code.Jdecl.map_methods
                  (fun m ->
                    if m.Code.Jdecl.method_name = "deposit" then
                      {
                        m with
                        Code.Jdecl.body =
                          Some
                            [
                              Code.Jstmt.S_expr
                                (Code.Jexpr.E_call (None, "audit", []));
                            ];
                      }
                    else m)
                  c)
          in
          let generated = Result.get_ok (Core.Pipeline.aspects project) in
          (Weaver.Weave.weave generated functional).Weaver.Weave.program
        in
        let outcome =
          Interp.Machine.run
            ~faults:[ ("Account", "audit") ]
            woven ~class_name:"Account" ~method_name:"deposit"
            ~args:[ Interp.Rvalue.V_double 10.0 ]
        in
        check cb "exception escapes" true
          (outcome.Interp.Machine.result = Error "RuntimeException");
        let sigs = event_sigs outcome.Interp.Machine.events in
        check cb "began" true (List.mem "TransactionManager.begin" sigs);
        check cb "rolled back" true (List.mem "TransactionManager.rollback" sigs);
        check cb "did not commit" false (List.mem "TransactionManager.commit" sigs));
    Alcotest.test_case
      "known limitation pinned: value-returning around skips the commit"
      `Quick (fun () ->
        (* the code-model weaver splices bodies at proceed(); a return inside
           the spliced body returns past the advice epilogue (EXPERIMENTS.md,
           limitations). This test pins that behaviour. *)
        let outcome =
          Interp.Machine.run (fig2_woven ()) ~class_name:"Account"
            ~method_name:"withdraw"
            ~args:[ Interp.Rvalue.V_double 10.0 ]
        in
        check cb "returned" true
          (outcome.Interp.Machine.result = Ok (Interp.Rvalue.V_bool false));
        let sigs = event_sigs outcome.Interp.Machine.events in
        check cb "began" true (List.mem "TransactionManager.begin" sigs);
        check cb "commit skipped (documented)" false
          (List.mem "TransactionManager.commit" sigs));
    Alcotest.test_case "concern parameters surface in the event details"
      `Quick (fun () ->
        let outcome =
          Interp.Machine.run (fig2_woven ()) ~class_name:"Account"
            ~method_name:"deposit"
            ~args:[ Interp.Rvalue.V_double 10.0 ]
        in
        check cb "registry address" true
          (List.exists
             (Interp.Event.matches ~source:"RemoteRuntime" ~action:"ensureExported"
                ~detail:"localhost:1099")
             outcome.Interp.Machine.events);
        check cb "isolation level" true
          (List.exists
             (Interp.Event.matches ~source:"TransactionManager" ~action:"begin"
                ~detail:"serializable")
             outcome.Interp.Machine.events));
    Alcotest.test_case "concurrency aspect produces monitor events at runtime"
      `Quick (fun () ->
        let project = Core.Project.create (Fixtures.banking ()) in
        let project =
          refine_exn project ~concern:"concurrency"
            ~params:[ ("guarded", v_names [ "Account" ]) ]
        in
        let woven =
          (Result.get_ok (Core.Pipeline.build project)).Core.Artifacts.woven
        in
        let outcome =
          Interp.Machine.run woven ~class_name:"Account" ~method_name:"deposit"
            ~args:[ Interp.Rvalue.V_double 1.0 ]
        in
        check (Alcotest.list cs) "monitor bracket"
          [ "Monitor.enter"; "Monitor.exit" ]
          (event_sigs outcome.Interp.Machine.events));
    Alcotest.test_case "logging aspect emits enter and exit events" `Quick
      (fun () ->
        let project = Core.Project.create (Fixtures.banking ()) in
        let project =
          refine_exn project ~concern:"logging"
            ~params:
              [
                ( "targets",
                  Transform.Params.V_list [ Transform.Params.V_string "Teller" ] );
              ]
        in
        let woven =
          (Result.get_ok (Core.Pipeline.build project)).Core.Artifacts.woven
        in
        let outcome =
          Interp.Machine.run woven ~class_name:"Teller" ~method_name:"transfer"
            ~args:
              [ Interp.Rvalue.V_null; Interp.Rvalue.V_null; Interp.Rvalue.V_double 1.0 ]
        in
        check cb "enter logged" true
          (List.exists
             (Interp.Event.matches ~source:"Logger" ~action:"log"
                ~detail:"enter execution(Teller.transfer)")
             outcome.Interp.Machine.events);
        check cb "exit logged" true
          (List.exists
             (Interp.Event.matches ~source:"Logger" ~action:"log"
                ~detail:"exit execution(Teller.transfer)")
             outcome.Interp.Machine.events));
    Alcotest.test_case "messaging aspect publishes before the async operation"
      `Quick (fun () ->
        let project = Core.Project.create (Fixtures.banking ()) in
        let project =
          refine_exn project ~concern:"messaging"
            ~params:
              [
                ("async", v_names [ "Account.deposit" ]);
                ("queue", Transform.Params.V_string "payments");
              ]
        in
        let woven =
          (Result.get_ok (Core.Pipeline.build project)).Core.Artifacts.woven
        in
        let outcome =
          Interp.Machine.run woven ~class_name:"Account" ~method_name:"deposit"
            ~args:[ Interp.Rvalue.V_double 1.0 ]
        in
        check cb "published" true
          (List.exists
             (Interp.Event.matches ~source:"MessageQueue" ~action:"publish"
                ~detail:"payments, execution(Account.deposit)")
             outcome.Interp.Machine.events);
        (* the non-async operation stays silent *)
        let silent =
          Interp.Machine.run woven ~class_name:"Account" ~method_name:"withdraw"
            ~args:[ Interp.Rvalue.V_double 1.0 ]
        in
        check ci "no events" 0 (List.length silent.Interp.Machine.events));
    Alcotest.test_case
      "persistence aspect: setters mark dirty, getters ensure loaded" `Quick
      (fun () ->
        let project = Core.Project.create (Fixtures.banking ()) in
        let project =
          refine_exn project ~concern:"persistence"
            ~params:[ ("persistent", v_names [ "Account" ]) ]
        in
        let woven =
          (Result.get_ok (Core.Pipeline.build project)).Core.Artifacts.woven
        in
        let st = Interp.Machine.create woven in
        let acct = Interp.Machine.new_object st "Account" in
        ignore
          (Interp.Machine.call st ~recv:acct "setBalance"
             [ Interp.Rvalue.V_double 5.0 ]);
        ignore (Interp.Machine.call st ~recv:acct "getBalance" []);
        check (Alcotest.list cs) "dirty then loaded"
          [ "PersistenceManager.markDirty"; "PersistenceManager.ensureLoaded" ]
          (event_sigs (Interp.Machine.events st)));
  ]

let () =
  Alcotest.run "interp"
    [ ("basics", basics_tests); ("woven-behaviour", woven_tests) ]
