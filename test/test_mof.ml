(* Tests for the mof metamodel substrate. *)

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

let has_rule rule violations =
  List.exists (fun (v : Mof.Wellformed.violation) -> v.Mof.Wellformed.rule = rule) violations

let fresh () = Mof.Model.create ~name:"m"

let with_class () =
  let m = fresh () in
  let m, cls = Mof.Builder.add_class m ~owner:(Mof.Model.root m) ~name:"C" in
  (m, cls)

(* ---- Id --------------------------------------------------------------- *)

let id_tests =
  [
    Alcotest.test_case "to_string/of_string round trip" `Quick (fun () ->
        let id = Mof.Id.of_int 42 in
        check cs "rendered" "e42" (Mof.Id.to_string id);
        match Mof.Id.of_string "e42" with
        | Some id' -> check cb "equal" true (Mof.Id.equal id id')
        | None -> Alcotest.fail "parse failed");
    Alcotest.test_case "of_string rejects malformed input" `Quick (fun () ->
        List.iter
          (fun s -> check cb s false (Mof.Id.of_string s <> None))
          [ ""; "e"; "x1"; "e-1"; "e1x"; "42" ]);
    Alcotest.test_case "compare orders by ordinal" `Quick (fun () ->
        check cb "lt" true (Mof.Id.compare (Mof.Id.of_int 1) (Mof.Id.of_int 2) < 0);
        check ci "eq" 0 (Mof.Id.compare (Mof.Id.of_int 5) (Mof.Id.of_int 5)));
    Alcotest.test_case "sets deduplicate" `Quick (fun () ->
        let s =
          Mof.Id.Set.of_list [ Mof.Id.of_int 1; Mof.Id.of_int 1; Mof.Id.of_int 2 ]
        in
        check ci "cardinal" 2 (Mof.Id.Set.cardinal s));
  ]

(* ---- Kind ------------------------------------------------------------- *)

let kind_tests =
  [
    Alcotest.test_case "multiplicity rendering" `Quick (fun () ->
        check cs "one" "1" (Mof.Kind.mult_to_string Mof.Kind.mult_one);
        check cs "opt" "0..1" (Mof.Kind.mult_to_string Mof.Kind.mult_opt);
        check cs "many" "0..*" (Mof.Kind.mult_to_string Mof.Kind.mult_many);
        check cs "some" "1..*" (Mof.Kind.mult_to_string Mof.Kind.mult_some);
        check cs "range" "2..5"
          (Mof.Kind.mult_to_string { Mof.Kind.lower = 2; upper = Some 5 }));
    Alcotest.test_case "multiplicity parsing" `Quick (fun () ->
        let round s =
          match Mof.Kind.mult_of_string s with
          | Some m -> Mof.Kind.mult_to_string m
          | None -> "<none>"
        in
        check cs "1" "1" (round "1");
        check cs "0..1" "0..1" (round "0..1");
        check cs "star" "0..*" (round "*");
        check cs "2..5" "2..5" (round "2..5");
        check cs "1..*" "1..*" (round "1..*"));
    Alcotest.test_case "multiplicity parsing rejects garbage" `Quick (fun () ->
        List.iter
          (fun s -> check cb s true (Mof.Kind.mult_of_string s = None))
          [ ""; "a"; "1.."; "..2"; "1.2" ]);
    Alcotest.test_case "multiplicity validity" `Quick (fun () ->
        check cb "one" true (Mof.Kind.mult_valid Mof.Kind.mult_one);
        check cb "negative lower" false
          (Mof.Kind.mult_valid { Mof.Kind.lower = -1; upper = None });
        check cb "upper below lower" false
          (Mof.Kind.mult_valid { Mof.Kind.lower = 3; upper = Some 2 }));
    Alcotest.test_case "visibility round trip" `Quick (fun () ->
        List.iter
          (fun v ->
            check cb
              (Mof.Kind.visibility_to_string v)
              true
              (Mof.Kind.visibility_of_string (Mof.Kind.visibility_to_string v)
              = Some v))
          [ Mof.Kind.Public; Mof.Kind.Private; Mof.Kind.Protected; Mof.Kind.Package_level ]);
    Alcotest.test_case "direction round trip" `Quick (fun () ->
        List.iter
          (fun d ->
            check cb
              (Mof.Kind.direction_to_string d)
              true
              (Mof.Kind.direction_of_string (Mof.Kind.direction_to_string d)
              = Some d))
          [ Mof.Kind.Dir_in; Mof.Kind.Dir_out; Mof.Kind.Dir_inout; Mof.Kind.Dir_return ]);
    Alcotest.test_case "aggregation round trip" `Quick (fun () ->
        List.iter
          (fun a ->
            check cb
              (Mof.Kind.aggregation_to_string a)
              true
              (Mof.Kind.aggregation_of_string (Mof.Kind.aggregation_to_string a)
              = Some a))
          [ Mof.Kind.Ag_none; Mof.Kind.Ag_shared; Mof.Kind.Ag_composite ]);
    Alcotest.test_case "datatype_refs finds nested references" `Quick (fun () ->
        let id = Mof.Id.of_int 7 in
        check ci "nested" 1
          (List.length
             (Mof.Kind.datatype_refs
                (Mof.Kind.Dt_collection (Mof.Kind.Dt_ref id))));
        check ci "scalar" 0 (List.length (Mof.Kind.datatype_refs Mof.Kind.Dt_string)));
    Alcotest.test_case "metaclass names are distinct" `Quick (fun () ->
        let names = Mof.Kind.all_names in
        check ci "count" 11 (List.length names);
        check ci "distinct" 11
          (List.length (List.sort_uniq String.compare names)));
  ]

(* ---- Element ---------------------------------------------------------- *)

let element_tests =
  let elt () =
    Mof.Element.make ~id:(Mof.Id.of_int 1) ~name:"E" ~owner:None
      (Mof.Kind.Package { owned = [] })
  in
  [
    Alcotest.test_case "stereotype add is idempotent" `Quick (fun () ->
        let e = Mof.Element.add_stereotype "s" (Mof.Element.add_stereotype "s" (elt ())) in
        check ci "one" 1 (List.length e.Mof.Element.stereotypes));
    Alcotest.test_case "stereotype remove" `Quick (fun () ->
        let e = Mof.Element.add_stereotype "s" (elt ()) in
        let e = Mof.Element.remove_stereotype "s" e in
        check cb "gone" false (Mof.Element.has_stereotype "s" e));
    Alcotest.test_case "set_tag replaces in place" `Quick (fun () ->
        let e = Mof.Element.set_tag "a" "1" (elt ()) in
        let e = Mof.Element.set_tag "b" "2" e in
        let e = Mof.Element.set_tag "a" "3" e in
        check cb "a updated" true (Mof.Element.tag "a" e = Some "3");
        (* order preserved: a still first *)
        check cs "first key" "a" (fst (List.hd e.Mof.Element.tags)));
    Alcotest.test_case "remove_tag" `Quick (fun () ->
        let e = Mof.Element.remove_tag "a" (Mof.Element.set_tag "a" "1" (elt ())) in
        check cb "gone" true (Mof.Element.tag "a" e = None));
    Alcotest.test_case "equal is structural" `Quick (fun () ->
        check cb "same" true (Mof.Element.equal (elt ()) (elt ()));
        check cb "renamed differs" false
          (Mof.Element.equal (elt ()) (Mof.Element.with_name "X" (elt ()))));
    Alcotest.test_case "metaclass" `Quick (fun () ->
        check cs "package" "Package" (Mof.Element.metaclass (elt ())));
  ]

(* ---- Model ------------------------------------------------------------ *)

let model_tests =
  [
    Alcotest.test_case "create makes a root package" `Quick (fun () ->
        let m = fresh () in
        check cs "name" "m" (Mof.Model.name m);
        check ci "size" 1 (Mof.Model.size m);
        check cb "root is package" true
          (match (Mof.Model.find_exn m (Mof.Model.root m)).Mof.Element.kind with
          | Mof.Kind.Package _ -> true
          | _ -> false));
    Alcotest.test_case "fresh ids are distinct" `Quick (fun () ->
        let m = fresh () in
        let m, a = Mof.Model.fresh_id m in
        let _, b = Mof.Model.fresh_id m in
        check cb "distinct" false (Mof.Id.equal a b));
    Alcotest.test_case "add rejects duplicate ids" `Quick (fun () ->
        let m = fresh () in
        let e =
          Mof.Element.make ~id:(Mof.Model.root m) ~name:"dup" ~owner:None
            (Mof.Kind.Package { owned = [] })
        in
        check cb "raises" true
          (try
             ignore (Mof.Model.add m e);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "update missing id raises Element_not_found" `Quick
      (fun () ->
        let m = fresh () in
        check cb "raises" true
          (try
             ignore (Mof.Model.update m (Mof.Id.of_int 99) Fun.id);
             false
           with Mof.Model.Element_not_found _ -> true));
    Alcotest.test_case "level tag" `Quick (fun () ->
        let m = Mof.Model.set_level_tag "PIM" (fresh ()) in
        check cb "tagged" true (Mof.Model.level_tag m = Some "PIM"));
    Alcotest.test_case "equal ignores the id counter" `Quick (fun () ->
        let m = fresh () in
        let m', _ = Mof.Model.fresh_id m in
        check cb "equal" true (Mof.Model.equal m m'));
    Alcotest.test_case "of_elements validates" `Quick (fun () ->
        let m, _ = with_class () in
        let elements = Mof.Model.elements m in
        (* valid reconstruction *)
        let m' = Mof.Model.of_elements ~root:(Mof.Model.root m) ~next:100 elements in
        check cb "round" true (Mof.Model.equal m m');
        (* next too small *)
        check cb "small next" true
          (try
             ignore (Mof.Model.of_elements ~root:(Mof.Model.root m) ~next:0 elements);
             false
           with Invalid_argument _ -> true);
        (* missing root *)
        check cb "missing root" true
          (try
             ignore
               (Mof.Model.of_elements ~root:(Mof.Id.of_int 77) ~next:100 elements);
             false
           with Invalid_argument _ -> true));
  ]

(* ---- Builder ---------------------------------------------------------- *)

let builder_tests =
  [
    Alcotest.test_case "class is linked into its package" `Quick (fun () ->
        let m, cls = with_class () in
        let owned = Mof.Query.owned_of m (Mof.Model.root m) in
        check cb "listed" true
          (List.exists (fun e -> Mof.Id.equal e.Mof.Element.id cls) owned);
        check cb "owner set" true
          ((Mof.Model.find_exn m cls).Mof.Element.owner = Some (Mof.Model.root m)));
    Alcotest.test_case "attribute on a package is rejected" `Quick (fun () ->
        let m = fresh () in
        check cb "raises" true
          (try
             ignore
               (Mof.Builder.add_attribute m ~cls:(Mof.Model.root m) ~name:"x"
                  ~typ:Mof.Kind.Dt_integer);
             false
           with Mof.Builder.Builder_error _ -> true));
    Alcotest.test_case "operation accepted on class and interface" `Quick
      (fun () ->
        let m, cls = with_class () in
        let m, iface = Mof.Builder.add_interface m ~owner:(Mof.Model.root m) ~name:"I" in
        let m, _ = Mof.Builder.add_operation m ~owner:cls ~name:"f" in
        let m, _ = Mof.Builder.add_operation m ~owner:iface ~name:"g" in
        check ci "class ops" 1 (List.length (Mof.Query.operations_of m cls));
        check ci "iface ops" 1 (List.length (Mof.Query.operations_of m iface)));
    Alcotest.test_case "set_result creates then replaces the return parameter"
      `Quick (fun () ->
        let m, cls = with_class () in
        let m, op = Mof.Builder.add_operation m ~owner:cls ~name:"f" in
        check cb "void initially" true (Mof.Query.result_of m op = Mof.Kind.Dt_void);
        let m = Mof.Builder.set_result m ~op ~typ:Mof.Kind.Dt_integer in
        check cb "integer" true (Mof.Query.result_of m op = Mof.Kind.Dt_integer);
        let m = Mof.Builder.set_result m ~op ~typ:Mof.Kind.Dt_string in
        check cb "replaced" true (Mof.Query.result_of m op = Mof.Kind.Dt_string);
        (* still a single return parameter *)
        let returns =
          List.filter
            (fun (p : Mof.Element.t) ->
              match p.Mof.Element.kind with
              | Mof.Kind.Parameter { direction = Mof.Kind.Dir_return; _ } -> true
              | _ -> false)
            (match (Mof.Model.find_exn m op).Mof.Element.kind with
            | Mof.Kind.Operation { params; _ } ->
                List.map (Mof.Model.find_exn m) params
            | _ -> [])
        in
        check ci "one return" 1 (List.length returns));
    Alcotest.test_case "generalization records the super" `Quick (fun () ->
        let m, child = with_class () in
        let m, parent = Mof.Builder.add_class m ~owner:(Mof.Model.root m) ~name:"P" in
        let m, gen = Mof.Builder.add_generalization m ~child ~parent in
        check cb "super recorded" true
          (List.exists (Mof.Id.equal parent) (Mof.Query.supers_of m child));
        check cb "element exists" true (Mof.Model.mem m gen));
    Alcotest.test_case "generalization rejects non-classes" `Quick (fun () ->
        let m, cls = with_class () in
        let m, iface = Mof.Builder.add_interface m ~owner:(Mof.Model.root m) ~name:"I" in
        check cb "raises" true
          (try
             ignore (Mof.Builder.add_generalization m ~child:cls ~parent:iface);
             false
           with Mof.Builder.Builder_error _ -> true));
    Alcotest.test_case "realization links class to interface" `Quick (fun () ->
        let m, cls = with_class () in
        let m, iface = Mof.Builder.add_interface m ~owner:(Mof.Model.root m) ~name:"I" in
        let m = Mof.Builder.add_realization m ~cls ~iface in
        check cb "linked" true
          (List.exists (Mof.Id.equal iface) (Mof.Query.realizations_of m cls));
        (* idempotent *)
        let m = Mof.Builder.add_realization m ~cls ~iface in
        check ci "once" 1 (List.length (Mof.Query.realizations_of m cls)));
    Alcotest.test_case "association requires two ends" `Quick (fun () ->
        let m, cls = with_class () in
        check cb "raises" true
          (try
             ignore
               (Mof.Builder.add_association m ~owner:(Mof.Model.root m) ~name:"a"
                  ~ends:
                    [
                      {
                        Mof.Kind.end_name = "x";
                        end_type = cls;
                        end_mult = Mof.Kind.mult_one;
                        end_navigable = true;
                        end_aggregation = Mof.Kind.Ag_none;
                      };
                    ]);
             false
           with Mof.Builder.Builder_error _ -> true));
    Alcotest.test_case "dependency carries its stereotype" `Quick (fun () ->
        let m, a = with_class () in
        let m, b = Mof.Builder.add_class m ~owner:(Mof.Model.root m) ~name:"B" in
        let m, dep =
          Mof.Builder.add_dependency m ~owner:(Mof.Model.root m) ~client:a
            ~supplier:b ~stereotype:"uses"
        in
        check cb "stereotyped" true
          (Mof.Element.has_stereotype "uses" (Mof.Model.find_exn m dep)));
    Alcotest.test_case "delete_element removes the subtree and unlinks" `Quick
      (fun () ->
        let m = Fixtures.banking () in
        let acct = Fixtures.class_id m "Account" in
        let before = Mof.Model.size m in
        let attrs = List.length (Mof.Query.attributes_of m acct) in
        let m = Mof.Builder.delete_element m acct in
        check cb "class gone" true (not (Mof.Model.mem m acct));
        check cb "children gone" true (Mof.Model.size m < before - attrs);
        let bank =
          match Mof.Query.find_by_qualified_name m "bank" with
          | Some e -> e.Mof.Element.id
          | None -> Alcotest.fail "bank package missing"
        in
        check cb "unlinked" true
          (not
             (List.exists
                (fun e -> Mof.Id.equal e.Mof.Element.id acct)
                (Mof.Query.owned_of m bank))));
    Alcotest.test_case "enumeration creation and rendering" `Quick (fun () ->
        let m = fresh () in
        let m, enum =
          Mof.Builder.add_enumeration m ~owner:(Mof.Model.root m)
            ~name:"Currency" ~literals:[ "CHF"; "EUR"; "USD" ]
        in
        check cs "metaclass" "Enumeration"
          (Mof.Element.metaclass (Mof.Model.find_exn m enum));
        check cb "well-formed" true (Mof.Wellformed.is_wellformed m);
        let text = Mof.Pp.model_to_string m in
        let contains needle =
          let nl = String.length needle and hl = String.length text in
          let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
          go 0
        in
        check cb "rendered" true (contains "enum Currency {CHF, EUR, USD}"));
    Alcotest.test_case "duplicate enumeration literals detected" `Quick
      (fun () ->
        let m = fresh () in
        let m, _ =
          Mof.Builder.add_enumeration m ~owner:(Mof.Model.root m) ~name:"Bad"
            ~literals:[ "A"; "A" ]
        in
        check cb "violation" true
          (has_rule Mof.Wellformed.Duplicate_literal (Mof.Wellformed.check m)));
    Alcotest.test_case "rename" `Quick (fun () ->
        let m, cls = with_class () in
        let m = Mof.Builder.rename m cls "Renamed" in
        check cs "name" "Renamed" (Mof.Model.find_exn m cls).Mof.Element.name);
  ]

(* ---- Query ------------------------------------------------------------ *)

let query_tests =
  [
    Alcotest.test_case "classifier listings" `Quick (fun () ->
        let m = Fixtures.banking () in
        check ci "classes" 4 (List.length (Mof.Query.classes m));
        check ci "packages" 2 (List.length (Mof.Query.packages m));
        check ci "associations" 1 (List.length (Mof.Query.associations m));
        check ci "constraints" 1 (List.length (Mof.Query.constraints m)));
    Alcotest.test_case "parameters_of excludes the return parameter" `Quick
      (fun () ->
        let m = Fixtures.banking () in
        let acct = Fixtures.class_id m "Account" in
        let wd =
          List.find
            (fun (o : Mof.Element.t) -> o.Mof.Element.name = "withdraw")
            (Mof.Query.operations_of m acct)
        in
        check ci "params" 1
          (List.length (Mof.Query.parameters_of m wd.Mof.Element.id));
        check cb "result" true
          (Mof.Query.result_of m wd.Mof.Element.id = Mof.Kind.Dt_boolean));
    Alcotest.test_case "qualified names" `Quick (fun () ->
        let m = Fixtures.banking () in
        let acct = Fixtures.class_id m "Account" in
        check cs "class" "bank.Account" (Mof.Query.qualified_name m acct);
        check cs "root" "banking" (Mof.Query.qualified_name m (Mof.Model.root m));
        match Mof.Query.find_by_qualified_name m "bank.Account.balance" with
        | Some e -> check cs "attr" "balance" e.Mof.Element.name
        | None -> Alcotest.fail "qualified lookup failed");
    Alcotest.test_case "dotted simple names lose to package joins" `Quick
      (fun () ->
        (* a root-level class literally named "pkg.Inner" prints the same
           qualified name as class Inner in package pkg; the structural
           (deeper) element must win regardless of creation order *)
        let build ~collider_first =
          let m = Mof.Model.create ~name:"m" in
          let root = Mof.Model.root m in
          let add_collider m = fst (Mof.Builder.add_class m ~owner:root ~name:"pkg.Inner") in
          let add_nested m =
            let m, pkg = Mof.Builder.add_package m ~owner:root ~name:"pkg" in
            let m, inner = Mof.Builder.add_class m ~owner:pkg ~name:"Inner" in
            (m, inner)
          in
          if collider_first then
            let m = add_collider m in
            add_nested m
          else
            let m, inner = add_nested m in
            (add_collider m, inner)
        in
        List.iter
          (fun collider_first ->
            let m, inner = build ~collider_first in
            match Mof.Query.find_by_qualified_name m "pkg.Inner" with
            | Some e ->
                check cb
                  (Printf.sprintf "nested wins (collider_first=%b)"
                     collider_first)
                  true
                  (Mof.Id.equal e.Mof.Element.id inner)
            | None -> Alcotest.fail "qualified lookup failed")
          [ true; false ]);
    Alcotest.test_case "supers_transitive walks the chain" `Quick (fun () ->
        let m = fresh () in
        let root = Mof.Model.root m in
        let m, a = Mof.Builder.add_class m ~owner:root ~name:"A" in
        let m, b = Mof.Builder.add_class m ~owner:root ~name:"B" in
        let m, c = Mof.Builder.add_class m ~owner:root ~name:"C" in
        let m, _ = Mof.Builder.add_generalization m ~child:a ~parent:b in
        let m, _ = Mof.Builder.add_generalization m ~child:b ~parent:c in
        let closure = Mof.Query.supers_transitive m a in
        check ci "two supers" 2 (List.length closure);
        check cb "nearest first" true (Mof.Id.equal (List.hd closure) b));
    Alcotest.test_case "supers_transitive tolerates cycles" `Quick (fun () ->
        let m = fresh () in
        let root = Mof.Model.root m in
        let m, a = Mof.Builder.add_class m ~owner:root ~name:"A" in
        let m, b = Mof.Builder.add_class m ~owner:root ~name:"B" in
        let m, _ = Mof.Builder.add_generalization m ~child:a ~parent:b in
        let m, _ = Mof.Builder.add_generalization m ~child:b ~parent:a in
        let closure = Mof.Query.supers_transitive m a in
        (* terminates, contains both a and b exactly once overall *)
        check cb "terminates" true (List.length closure <= 2));
    Alcotest.test_case "realizers_of" `Quick (fun () ->
        let m, cls = with_class () in
        let m, iface = Mof.Builder.add_interface m ~owner:(Mof.Model.root m) ~name:"I" in
        let m = Mof.Builder.add_realization m ~cls ~iface in
        check ci "one realizer" 1 (List.length (Mof.Query.realizers_of m iface)));
    Alcotest.test_case "with_stereotype" `Quick (fun () ->
        let m, cls = with_class () in
        let m = Mof.Builder.add_stereotype m cls "hot" in
        check ci "found" 1 (List.length (Mof.Query.with_stereotype m "hot"));
        check ci "absent" 0 (List.length (Mof.Query.with_stereotype m "cold")));
    Alcotest.test_case "containing_class finds the enclosing class" `Quick
      (fun () ->
        let m = Fixtures.banking () in
        let acct = Fixtures.class_id m "Account" in
        let dep =
          List.find
            (fun (o : Mof.Element.t) -> o.Mof.Element.name = "deposit")
            (Mof.Query.operations_of m acct)
        in
        let param = List.hd (Mof.Query.parameters_of m dep.Mof.Element.id) in
        check cb "param's class" true
          (Mof.Query.containing_class m param.Mof.Element.id = Some acct));
    Alcotest.test_case "public_operations_of filters visibility" `Quick
      (fun () ->
        let m, cls = with_class () in
        let m, _ =
          Mof.Builder.add_operation m ~owner:cls ~name:"pub"
            ~visibility:Mof.Kind.Public
        in
        let m, _ =
          Mof.Builder.add_operation m ~owner:cls ~name:"priv"
            ~visibility:Mof.Kind.Private
        in
        check ci "public only" 1
          (List.length (Mof.Query.public_operations_of m cls)));
  ]

(* ---- Wellformed ------------------------------------------------------- *)

let wellformed_tests =
  [
    Alcotest.test_case "fixture is well-formed" `Quick (fun () ->
        check cb "clean" true (Mof.Wellformed.is_wellformed (Fixtures.banking ())));
    Alcotest.test_case "dangling reference detected" `Quick (fun () ->
        let m, cls = with_class () in
        let m, _ =
          Mof.Builder.add_attribute m ~cls ~name:"x"
            ~typ:(Mof.Kind.Dt_ref (Mof.Id.of_int 999))
        in
        check cb "violation" true
          (has_rule Mof.Wellformed.Dangling_reference (Mof.Wellformed.check m)));
    Alcotest.test_case "owner mismatch detected" `Quick (fun () ->
        let m, cls = with_class () in
        (* forge an element whose owner does not list it *)
        let m, orphan_id = Mof.Model.fresh_id m in
        let orphan =
          Mof.Element.make ~id:orphan_id ~name:"orphan" ~owner:(Some cls)
            (Mof.Kind.Attribute
               {
                 attr_type = Mof.Kind.Dt_integer;
                 attr_visibility = Mof.Kind.Private;
                 attr_mult = Mof.Kind.mult_one;
                 is_derived = false;
                 is_static = false;
                 initial_value = None;
               })
        in
        let m = Mof.Model.add m orphan in
        check cb "violation" true
          (has_rule Mof.Wellformed.Owner_mismatch (Mof.Wellformed.check m)));
    Alcotest.test_case "duplicate sibling names detected" `Quick (fun () ->
        let m, cls = with_class () in
        let m, _ = Mof.Builder.add_attribute m ~cls ~name:"x" ~typ:Mof.Kind.Dt_integer in
        let m, _ = Mof.Builder.add_attribute m ~cls ~name:"x" ~typ:Mof.Kind.Dt_string in
        check cb "violation" true
          (has_rule Mof.Wellformed.Duplicate_name (Mof.Wellformed.check m)));
    Alcotest.test_case "inheritance cycle detected" `Quick (fun () ->
        let m, a = with_class () in
        let m, b = Mof.Builder.add_class m ~owner:(Mof.Model.root m) ~name:"B" in
        let m, _ = Mof.Builder.add_generalization m ~child:a ~parent:b in
        let m, _ = Mof.Builder.add_generalization m ~child:b ~parent:a in
        check cb "violation" true
          (has_rule Mof.Wellformed.Inheritance_cycle (Mof.Wellformed.check m)));
    Alcotest.test_case "invalid multiplicity detected" `Quick (fun () ->
        let m, cls = with_class () in
        let m, _ =
          Mof.Builder.add_attribute m ~cls ~name:"x" ~typ:Mof.Kind.Dt_integer
            ~mult:{ Mof.Kind.lower = 5; upper = Some 2 }
        in
        check cb "violation" true
          (has_rule Mof.Wellformed.Invalid_multiplicity (Mof.Wellformed.check m)));
    Alcotest.test_case "abstract operation in concrete class detected" `Quick
      (fun () ->
        let m, cls = with_class () in
        let m, _ =
          Mof.Builder.add_operation m ~owner:cls ~name:"f" ~is_abstract:true
        in
        check cb "violation" true
          (has_rule Mof.Wellformed.Abstract_leaf (Mof.Wellformed.check m));
        (* the same operation in an abstract class is fine *)
        let m2 = fresh () in
        let m2, abs =
          Mof.Builder.add_class ~is_abstract:true m2 ~owner:(Mof.Model.root m2)
            ~name:"A"
        in
        let m2, _ =
          Mof.Builder.add_operation m2 ~owner:abs ~name:"f" ~is_abstract:true
        in
        check cb "abstract ok" false
          (has_rule Mof.Wellformed.Abstract_leaf (Mof.Wellformed.check m2)));
    Alcotest.test_case "empty name detected" `Quick (fun () ->
        let m = fresh () in
        let m, _ = Mof.Builder.add_class m ~owner:(Mof.Model.root m) ~name:"" in
        check cb "violation" true
          (has_rule Mof.Wellformed.Empty_name (Mof.Wellformed.check m)));
    Alcotest.test_case "rule names are stable" `Quick (fun () ->
        check cs "dangling" "dangling-reference"
          (Mof.Wellformed.rule_name Mof.Wellformed.Dangling_reference));
  ]

(* ---- Diff ------------------------------------------------------------- *)

let diff_tests =
  [
    Alcotest.test_case "identical models diff empty" `Quick (fun () ->
        let m = Fixtures.banking () in
        check cb "empty" true
          (Mof.Diff.is_empty (Mof.Diff.compute ~old_model:m ~new_model:m)));
    Alcotest.test_case "classification" `Quick (fun () ->
        let m = Fixtures.banking () in
        let acct = Fixtures.class_id m "Account" in
        let m2, added = Mof.Builder.add_class m ~owner:(Mof.Model.root m) ~name:"New" in
        let m2 = Mof.Builder.add_stereotype m2 acct "touched" in
        let d = Mof.Diff.compute ~old_model:m ~new_model:m2 in
        check cb "added" true (Mof.Id.Set.mem added d.Mof.Diff.added);
        check cb "modified" true (Mof.Id.Set.mem acct d.Mof.Diff.modified);
        (* root is modified too: its owned list changed *)
        check cb "root modified" true
          (Mof.Id.Set.mem (Mof.Model.root m) d.Mof.Diff.modified);
        check ci "removed" 0 (Mof.Id.Set.cardinal d.Mof.Diff.removed));
    Alcotest.test_case "removal detected" `Quick (fun () ->
        let m = Fixtures.banking () in
        let cust = Fixtures.class_id m "Customer" in
        let m2 = Mof.Builder.delete_element m cust in
        let d = Mof.Diff.compute ~old_model:m ~new_model:m2 in
        check cb "removed" true (Mof.Id.Set.mem cust d.Mof.Diff.removed));
    Alcotest.test_case "union prefers added over modified" `Quick (fun () ->
        let id = Mof.Id.of_int 3 in
        let a = { Mof.Diff.empty with Mof.Diff.added = Mof.Id.Set.singleton id } in
        let b = { Mof.Diff.empty with Mof.Diff.modified = Mof.Id.Set.singleton id } in
        let u = Mof.Diff.union a b in
        check cb "added wins" true (Mof.Id.Set.mem id u.Mof.Diff.added);
        check cb "not modified" false (Mof.Id.Set.mem id u.Mof.Diff.modified));
    Alcotest.test_case "pp summary" `Quick (fun () ->
        let d = Mof.Diff.empty in
        check cs "zeroes" "+0 -0 ~0" (Format.asprintf "%a" Mof.Diff.pp d));
  ]

(* ---- Store (indexes + journal) ---------------------------------------- *)

let forged_attr ~id ~name ~owner ~target =
  Mof.Element.make ~id ~name ~owner
    (Mof.Kind.Attribute
       {
         attr_type = Mof.Kind.Dt_ref target;
         attr_visibility = Mof.Kind.Private;
         attr_mult = Mof.Kind.mult_one;
         is_derived = false;
         is_static = false;
         initial_value = None;
       })

let diff_equal (a : Mof.Diff.t) (b : Mof.Diff.t) =
  Mof.Id.Set.equal a.Mof.Diff.added b.Mof.Diff.added
  && Mof.Id.Set.equal a.Mof.Diff.removed b.Mof.Diff.removed
  && Mof.Id.Set.equal a.Mof.Diff.modified b.Mof.Diff.modified

let store_tests =
  [
    Alcotest.test_case "kind and name indexes follow add/update/remove" `Quick
      (fun () ->
        let m, cls = with_class () in
        check ci "one class" 1 (Mof.Id.Set.cardinal (Mof.Model.by_kind m "Class"));
        check cb "named C" true (Mof.Id.Set.mem cls (Mof.Model.by_name m "C"));
        let m = Mof.Model.update m cls (Mof.Element.with_name "D") in
        check cb "old name bucket dropped" true
          (Mof.Id.Set.is_empty (Mof.Model.by_name m "C"));
        check cb "new name bucket gained" true
          (Mof.Id.Set.mem cls (Mof.Model.by_name m "D"));
        let m = Mof.Model.remove m cls in
        check cb "kind bucket dropped" true
          (Mof.Id.Set.is_empty (Mof.Model.by_kind m "Class")));
    Alcotest.test_case "stereotype index follows element updates" `Quick
      (fun () ->
        let m, cls = with_class () in
        let m = Mof.Builder.add_stereotype m cls "hot" in
        check cb "indexed" true (Mof.Id.Set.mem cls (Mof.Model.by_stereotype m "hot"));
        let m = Mof.Model.update m cls (Mof.Element.remove_stereotype "hot") in
        check cb "dropped" true
          (Mof.Id.Set.is_empty (Mof.Model.by_stereotype m "hot")));
    Alcotest.test_case "owned_by mirrors the owner field" `Quick (fun () ->
        let m, cls = with_class () in
        check cb "listed" true
          (Mof.Id.Set.mem cls (Mof.Model.owned_by m (Mof.Model.root m)));
        let m = Mof.Builder.delete_element m cls in
        check cb "gone" true
          (not (Mof.Id.Set.mem cls (Mof.Model.owned_by m (Mof.Model.root m)))));
    Alcotest.test_case "referrers tracks unbound targets" `Quick (fun () ->
        let m, cls = with_class () in
        let ghost = Mof.Id.of_int 999 in
        let m, aid = Mof.Model.fresh_id m in
        let m =
          Mof.Model.add m
            (forged_attr ~id:aid ~name:"x" ~owner:(Some cls) ~target:ghost)
        in
        check cb "indexed" true (Mof.Id.Set.mem aid (Mof.Model.referrers m ghost));
        let m = Mof.Model.remove m aid in
        check cb "dropped" true
          (Mof.Id.Set.is_empty (Mof.Model.referrers m ghost)));
    Alcotest.test_case "touched_since replays the journal" `Quick (fun () ->
        let m, cls = with_class () in
        let w = Mof.Model.watermark m in
        let m2 = Mof.Builder.add_stereotype m cls "s" in
        (match Mof.Model.touched_since m2 w with
        | Some s -> check cb "cls touched" true (Mof.Id.Set.mem cls s)
        | None -> Alcotest.fail "descendant not recognized");
        match Mof.Model.touched_since m w with
        | Some s -> check ci "self empty" 0 (Mof.Id.Set.cardinal s)
        | None -> Alcotest.fail "self not recognized");
    Alcotest.test_case "touched_since refuses foreign lineages" `Quick
      (fun () ->
        let m, _ = with_class () in
        let other =
          Mof.Model.of_elements ~root:(Mof.Model.root m) ~next:100
            (Mof.Model.elements m)
        in
        check cb "unrelated" true
          (Mof.Model.touched_since other (Mof.Model.watermark m) = None);
        let left = Mof.Builder.add_stereotype m (Mof.Model.root m) "l" in
        let right = Mof.Builder.add_stereotype m (Mof.Model.root m) "r" in
        check cb "divergent branches" true
          (Mof.Model.touched_since left (Mof.Model.watermark right) = None));
    Alcotest.test_case "next is the serialized counter" `Quick (fun () ->
        let m, _ = with_class () in
        let m' =
          Mof.Model.of_elements ~root:(Mof.Model.root m) ~next:100
            (Mof.Model.elements m)
        in
        check ci "restored" 100 (Mof.Model.next m');
        let m'', id = Mof.Model.fresh_id m' in
        check ci "fresh uses it" 100 (Mof.Id.to_int id);
        check ci "bumped" 101 (Mof.Model.next m''));
    Alcotest.test_case "diff falls back to scanning foreign lineages" `Quick
      (fun () ->
        let a = Fixtures.banking () in
        let b =
          Mof.Model.of_elements ~root:(Mof.Model.root a) ~next:(Mof.Model.next a)
            (Mof.Model.elements a)
        in
        let b, _ = Mof.Builder.add_class b ~owner:(Mof.Model.root b) ~name:"New" in
        check cb "equal" true
          (diff_equal
             (Mof.Diff.compute ~old_model:a ~new_model:b)
             (Mof.Diff.compute_scan ~old_model:a ~new_model:b)));
    Alcotest.test_case "check_touched of nothing reports nothing" `Quick
      (fun () ->
        check ci "none" 0
          (List.length
             (Mof.Wellformed.check_touched (Fixtures.banking ())
                ~touched:Mof.Id.Set.empty)));
    Alcotest.test_case "scoped recheck catches a sibling duplicate" `Quick
      (fun () ->
        (* renaming touches only the renamed class, yet the duplicate-name
           verdict is decided by the untouched owner: the scope must widen
           through the referrers index to find it *)
        let m, a = with_class () in
        let m, _ = Mof.Builder.add_class m ~owner:(Mof.Model.root m) ~name:"B" in
        let m2 = Mof.Builder.rename m a "B" in
        let touched =
          Mof.Diff.touched (Mof.Diff.compute ~old_model:m ~new_model:m2)
        in
        let scoped = Mof.Wellformed.check_touched m2 ~touched in
        check cb "dup seen" true (has_rule Mof.Wellformed.Duplicate_name scoped);
        check cb "same as full" true (Mof.Wellformed.check m2 = scoped));
  ]

(* ---- Pp --------------------------------------------------------------- *)

let pp_tests =
  [
    Alcotest.test_case "model rendering mentions the fixture" `Quick (fun () ->
        let text = Mof.Pp.model_to_string (Fixtures.banking ()) in
        let contains needle =
          let nl = String.length needle and hl = String.length text in
          let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
          go 0
        in
        List.iter
          (fun needle -> check cb needle true (contains needle))
          [
            "package banking";
            "class Account";
            "class SavingsAccount extends Account";
            "-balance : Real [1]";
            "+withdraw(in amount : Real) : Boolean";
            "association holds";
            "constraint positive-balance";
          ]);
    Alcotest.test_case "datatype rendering resolves references" `Quick (fun () ->
        let m = Fixtures.banking () in
        let acct = Fixtures.class_id m "Account" in
        check cs "ref" "Account"
          (Format.asprintf "%a" (Mof.Pp.datatype m) (Mof.Kind.Dt_ref acct));
        check cs "collection" "Set(Integer)"
          (Format.asprintf "%a" (Mof.Pp.datatype m)
             (Mof.Kind.Dt_collection Mof.Kind.Dt_integer)));
  ]

(* ---- randomized store consistency ------------------------------------- *)

(* Random mutation sequences over the full store vocabulary, replayed
   against scan-based reference implementations of every index and query.
   The op interpreters keep owner chains intact (qualified names must stay
   total): raw [Model.remove] only ever hits forged leaf attributes owned by
   the root, and structural deletes go through [Builder.delete_element]. *)

let op_names = [| "A"; "B"; "C"; "Acct"; "We.ird"; "x" |]
let op_stereos = [| "hot"; "cold"; "entity" |]

let ops_gen =
  QCheck2.Gen.(
    list_size (int_range 1 50)
      (triple (int_bound 1000) (int_bound 1000) (int_bound 1000)))

let apply_store_op (m, forged) (sel, a, b) =
  let ids = List.map (fun (e : Mof.Element.t) -> e.Mof.Element.id) (Mof.Model.elements m) in
  let pick k = List.nth ids (k mod List.length ids) in
  let name k = op_names.(k mod Array.length op_names) in
  match sel mod 9 with
  | 0 ->
      (fst (Mof.Builder.add_class m ~owner:(Mof.Model.root m) ~name:(name a)), forged)
  | 1 -> (
      match Mof.Query.classes m with
      | [] -> (m, forged)
      | cs ->
          let c = (List.nth cs (a mod List.length cs)).Mof.Element.id in
          ( fst (Mof.Builder.add_attribute m ~cls:c ~name:(name b) ~typ:Mof.Kind.Dt_integer),
            forged ))
  | 2 ->
      ( Mof.Builder.add_stereotype m (pick a) op_stereos.(b mod Array.length op_stereos),
        forged )
  | 3 -> (Mof.Model.update m (pick a) (Mof.Element.with_name (name b)), forged)
  | 4 ->
      (* forged leaf: raw add, owner root, datatype ref to a possibly
         unbound id — exercises the referrers index on dangling targets *)
      let m, id = Mof.Model.fresh_id m in
      let m =
        Mof.Model.add m
          (forged_attr ~id ~name:(name b) ~owner:(Some (Mof.Model.root m))
             ~target:(Mof.Id.of_int (b mod 60)))
      in
      (m, id :: forged)
  | 5 -> (
      match forged with
      | [] -> (m, forged)
      | f :: rest -> (Mof.Model.remove m f, rest))
  | 6 -> (
      match List.filter (fun i -> not (Mof.Id.equal i (Mof.Model.root m))) ids with
      | [] -> (m, forged)
      | nr ->
          let m = Mof.Builder.delete_element m (List.nth nr (a mod List.length nr)) in
          (m, List.filter (Mof.Model.mem m) forged))
  | 7 ->
      (Mof.Model.update m (pick a) (Mof.Element.set_tag "k" (string_of_int (b mod 5))), forged)
  | _ -> (
      match Mof.Query.classes m with
      | _ :: _ :: _ as cs ->
          let child = (List.nth cs (a mod List.length cs)).Mof.Element.id in
          let parent = (List.nth cs (b mod List.length cs)).Mof.Element.id in
          if Mof.Id.equal child parent then (m, forged)
          else (fst (Mof.Builder.add_generalization m ~child ~parent), forged)
      | _ -> (m, forged))

let scan_ids m p =
  List.filter_map
    (fun (e : Mof.Element.t) -> if p e then Some e.Mof.Element.id else None)
    (Mof.Model.elements m)

let indexes_agree m =
  let elements = Mof.Model.elements m in
  let eq_ids set ids = Mof.Id.Set.elements set = ids in
  let id_probes =
    Mof.Id.Set.elements
      (Mof.Id.Set.of_list
         ((Mof.Id.of_int 999
          :: List.map (fun (e : Mof.Element.t) -> e.Mof.Element.id) elements)
         @ List.concat_map
             (fun (e : Mof.Element.t) -> Mof.Kind.refs e.Mof.Element.kind)
             elements))
  in
  List.for_all
    (fun k ->
      eq_ids (Mof.Model.by_kind m k)
        (scan_ids m (fun e -> Mof.Element.metaclass e = k)))
    Mof.Kind.all_names
  && List.for_all
       (fun n ->
         eq_ids (Mof.Model.by_name m n)
           (scan_ids m (fun e -> e.Mof.Element.name = n)))
       ("zz-missing"
       :: List.map (fun (e : Mof.Element.t) -> e.Mof.Element.name) elements)
  && List.for_all
       (fun s ->
         eq_ids (Mof.Model.by_stereotype m s)
           (scan_ids m (Mof.Element.has_stereotype s)))
       ("zz-missing"
       :: List.concat_map
            (fun (e : Mof.Element.t) -> e.Mof.Element.stereotypes)
            elements)
  && List.for_all
       (fun t ->
         eq_ids (Mof.Model.owned_by m t)
           (scan_ids m (fun e -> e.Mof.Element.owner = Some t))
         && eq_ids (Mof.Model.referrers m t)
              (scan_ids m (fun e ->
                   List.exists (Mof.Id.equal t) (Mof.Kind.refs e.Mof.Element.kind))))
       id_probes

(* Every id absent from [touched_since] must be bound identically in both
   models: the journal may over-report (touch-and-revert) but never miss a
   difference. *)
let journal_complete base final =
  match Mof.Model.touched_since final (Mof.Model.watermark base) with
  | None -> false
  | Some touched ->
      let covered a b =
        Mof.Model.fold
          (fun e ok ->
            ok
            && (Mof.Id.Set.mem e.Mof.Element.id touched
               ||
               match Mof.Model.find b e.Mof.Element.id with
               | Some e' -> Mof.Element.equal e e'
               | None -> false))
          a true
      in
      covered final base && covered base final

let queries_agree m =
  let eq_elts = List.equal Mof.Element.equal in
  let eq_opt = Option.equal Mof.Element.equal in
  let elements = Mof.Model.elements m in
  let names =
    "zz-missing"
    :: List.map (fun (e : Mof.Element.t) -> e.Mof.Element.name) elements
  in
  List.for_all
    (fun k ->
      eq_elts (Mof.Query.of_metaclass m k)
        (Mof.Model.filter (fun e -> Mof.Element.metaclass e = k) m))
    Mof.Kind.all_names
  && List.for_all
       (fun n ->
         eq_elts (Mof.Query.find_named m n)
           (Mof.Model.filter (fun e -> e.Mof.Element.name = n) m)
         && eq_opt (Mof.Query.find_class m n)
              (List.find_opt
                 (fun (e : Mof.Element.t) -> e.Mof.Element.name = n)
                 (Mof.Model.filter
                    (fun e -> Mof.Element.metaclass e = "Class")
                    m)))
       names
  && List.for_all
       (fun s ->
         eq_elts (Mof.Query.with_stereotype m s)
           (Mof.Model.filter (Mof.Element.has_stereotype s) m))
       ("zz-missing" :: List.concat_map
          (fun (e : Mof.Element.t) -> e.Mof.Element.stereotypes) elements)
  && List.for_all
       (fun q ->
         (* among colliding matches (dotted simple names, a root-level
            element named like the renamed root, ...) the documented rule
            is: deepest owner chain wins, lowest id breaks ties *)
         let depth (e : Mof.Element.t) =
           List.length (Mof.Query.owner_chain m e.Mof.Element.id)
         in
         let expected =
           List.fold_left
             (fun best (e : Mof.Element.t) ->
               if Mof.Query.qualified_name m e.Mof.Element.id <> q then best
               else
                 match best with
                 | Some b when depth b >= depth e -> best
                 | _ -> Some e)
             None elements
         in
         eq_opt (Mof.Query.find_by_qualified_name m q) expected)
       ("no.such.thing"
       :: List.map
            (fun (e : Mof.Element.t) -> Mof.Query.qualified_name m e.Mof.Element.id)
            elements)

(* Op interpreter for the scoped-wellformedness property: builder-level
   mutations seeded with every violation family, while never deleting a
   class (a dangling super would crash [supers_transitive] in the full
   check too — deletion of classifiers is a builder-level concern). *)
let apply_wf_op m (sel, a, b) =
  let ids = List.map (fun (e : Mof.Element.t) -> e.Mof.Element.id) (Mof.Model.elements m) in
  let pick k = List.nth ids (k mod List.length ids) in
  let name k = op_names.(k mod Array.length op_names) in
  try
    match sel mod 8 with
    | 0 -> fst (Mof.Builder.add_class m ~owner:(Mof.Model.root m) ~name:(name a))
    | 1 -> (
        match Mof.Query.classes m with
        | [] -> m
        | cs ->
            let c = (List.nth cs (a mod List.length cs)).Mof.Element.id in
            let typ =
              if b mod 4 = 0 then Mof.Kind.Dt_ref (Mof.Id.of_int 998)
              else Mof.Kind.Dt_integer
            in
            let mult =
              if b mod 5 = 0 then { Mof.Kind.lower = 3; upper = Some 1 }
              else Mof.Kind.mult_one
            in
            let nm = if b mod 7 = 0 then "" else name b in
            fst (Mof.Builder.add_attribute m ~cls:c ~name:nm ~typ ~mult))
    | 2 -> (
        match Mof.Query.classes m with
        | [] -> m
        | cs ->
            let c = (List.nth cs (a mod List.length cs)).Mof.Element.id in
            fst
              (Mof.Builder.add_operation m ~owner:c ~name:(name b)
                 ~is_abstract:(b mod 3 = 0)))
    | 3 -> (
        match Mof.Query.classes m with
        | _ :: _ :: _ as cs ->
            let child = (List.nth cs (a mod List.length cs)).Mof.Element.id in
            let parent = (List.nth cs (b mod List.length cs)).Mof.Element.id in
            if Mof.Id.equal child parent then m
            else fst (Mof.Builder.add_generalization m ~child ~parent)
        | _ -> m)
    | 4 -> (
        let leaves =
          Mof.Model.filter
            (fun e ->
              (match e.Mof.Element.kind with
              | Mof.Kind.Attribute _ | Mof.Kind.Operation _ | Mof.Kind.Parameter _ -> true
              | _ -> false)
              (* orphans forged under a since-deleted owner cannot be
                 unlinked; they stay as owner-mismatch violations *)
              && match e.Mof.Element.owner with
                 | Some o -> Mof.Model.mem m o
                 | None -> false)
            m
        in
        match leaves with
        | [] -> m
        | _ ->
            Mof.Builder.delete_element m
              (List.nth leaves (a mod List.length leaves)).Mof.Element.id)
    | 5 -> Mof.Builder.rename m (pick a) (if b mod 6 = 0 then "" else name b)
    | 6 -> Mof.Builder.add_stereotype m (pick a) "s"
    | _ ->
        (* orphan: owner never lists raw-added elements *)
        let m, id = Mof.Model.fresh_id m in
        Mof.Model.add m
          (forged_attr ~id ~name:(name b) ~owner:(Some (pick a)) ~target:(pick b))
  with Mof.Builder.Builder_error _ -> m

(* ---- properties ------------------------------------------------------- *)

let property_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck2.Test.make ~name:"generated models are well-formed" ~count:50
        Gen.model_gen (fun m -> Mof.Wellformed.is_wellformed m);
      QCheck2.Test.make ~name:"self-diff is empty" ~count:50 Gen.model_gen
        (fun m -> Mof.Diff.is_empty (Mof.Diff.compute ~old_model:m ~new_model:m));
      QCheck2.Test.make ~name:"adding a class is visible in the diff" ~count:50
        Gen.model_gen (fun m ->
          let m2, id = Mof.Builder.add_class m ~owner:(Mof.Model.root m) ~name:"Zz" in
          let d = Mof.Diff.compute ~old_model:m ~new_model:m2 in
          Mof.Id.Set.mem id d.Mof.Diff.added);
      QCheck2.Test.make ~name:"qualified_name is rooted" ~count:30 Gen.model_gen
        (fun m ->
          List.for_all
            (fun (e : Mof.Element.t) ->
              let q = Mof.Query.qualified_name m e.Mof.Element.id in
              String.length q > 0)
            (Mof.Model.elements m));
      QCheck2.Test.make
        ~name:"indexes, journal, diff and queries match a full rescan"
        ~count:60 ops_gen
        (fun ops ->
          let base = Fixtures.banking () in
          let final, _ = List.fold_left apply_store_op (base, []) ops in
          indexes_agree final
          && journal_complete base final
          && diff_equal
               (Mof.Diff.compute ~old_model:base ~new_model:final)
               (Mof.Diff.compute_scan ~old_model:base ~new_model:final)
          && queries_agree final);
      QCheck2.Test.make
        ~name:"scoped well-formedness equals the full pass" ~count:80 ops_gen
        (fun ops ->
          let base = Fixtures.banking () in
          let final = List.fold_left apply_wf_op base ops in
          let touched =
            Mof.Diff.touched (Mof.Diff.compute ~old_model:base ~new_model:final)
          in
          Mof.Wellformed.check final
          = Mof.Wellformed.check_touched final ~touched);
    ]

let () =
  Alcotest.run "mof"
    [
      ("id", id_tests);
      ("kind", kind_tests);
      ("element", element_tests);
      ("model", model_tests);
      ("builder", builder_tests);
      ("query", query_tests);
      ("wellformed", wellformed_tests);
      ("diff", diff_tests);
      ("store", store_tests);
      ("pp", pp_tests);
      ("properties", property_tests);
    ]
