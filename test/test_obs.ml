(* lib/obs — spans, metrics, sinks, trace export.

   Covers: span nesting/ordering through the memory sink, exception
   safety, counter/gauge/histogram arithmetic, null-sink no-op behaviour,
   JSONL and Chrome trace well-formedness (validated with the minimal JSON
   parser below), and determinism of the event stream modulo timestamps. *)

(* ---- a minimal JSON syntax checker ------------------------------------ *)

(* Accepts exactly the JSON grammar (RFC 8259) we emit; returns an error
   message on the first syntax violation. No AST — validation only. *)
module Json_check = struct
  exception Bad of string

  let check (s : string) : (unit, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some x when x = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word =
      String.iter (fun c -> expect c) word
    in
    let hex_digit () =
      match peek () with
      | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
      | _ -> fail "bad \\u escape"
    in
    let string_ () =
      expect '"';
      let rec chars () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
                advance ();
                chars ()
            | Some 'u' ->
                advance ();
                hex_digit ();
                hex_digit ();
                hex_digit ();
                hex_digit ();
                chars ()
            | _ -> fail "bad escape")
        | Some c when Char.code c < 0x20 -> fail "raw control char in string"
        | Some _ ->
            advance ();
            chars ()
      in
      chars ()
    in
    let digits () =
      let saw = ref false in
      let rec loop () =
        match peek () with
        | Some '0' .. '9' ->
            saw := true;
            advance ();
            loop ()
        | _ -> ()
      in
      loop ();
      if not !saw then fail "expected digit"
    in
    let number () =
      (match peek () with Some '-' -> advance () | _ -> ());
      digits ();
      (match peek () with
      | Some '.' ->
          advance ();
          digits ()
      | _ -> ());
      match peek () with
      | Some ('e' | 'E') ->
          advance ();
          (match peek () with Some ('+' | '-') -> advance () | _ -> ());
          digits ()
      | _ -> ()
    in
    let rec value () =
      skip_ws ();
      (match peek () with
      | Some '{' -> obj ()
      | Some '[' -> array_ ()
      | Some '"' -> string_ ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | Some ('-' | '0' .. '9') -> number ()
      | _ -> fail "expected value");
      skip_ws ()
    and obj () =
      expect '{';
      skip_ws ();
      (match peek () with
      | Some '}' -> advance ()
      | _ ->
          let rec members () =
            skip_ws ();
            string_ ();
            skip_ws ();
            expect ':';
            value ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | _ -> expect '}'
          in
          members ())
    and array_ () =
      expect '[';
      skip_ws ();
      match peek () with
      | Some ']' -> advance ()
      | _ ->
          let rec elements () =
            value ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | _ -> expect ']'
          in
          elements ()
    in
    match
      value ();
      skip_ws ();
      if !pos <> n then fail "trailing garbage"
    with
    | () -> Ok ()
    | exception Bad msg -> Error msg
end

let check_json what s =
  match Json_check.check s with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: invalid JSON: %s\n%s" what msg s

(* ---- helpers ----------------------------------------------------------- *)

(* Run [f] against a fresh memory sink from a clean obs state; returns the
   recorded events, with the global state reset afterwards. *)
let with_memory f =
  Obs.reset ();
  let sink, events = Obs.Sink.memory () in
  Obs.set_sink sink;
  Fun.protect ~finally:Obs.reset (fun () ->
      f ();
      events ())

let names events = List.map (fun (e : Obs.Event.t) -> e.Obs.Event.name) events
let phases events =
  List.map (fun (e : Obs.Event.t) -> Obs.Event.phase e.Obs.Event.kind) events
let depths events = List.map (fun (e : Obs.Event.t) -> e.Obs.Event.depth) events

let sl = Alcotest.(list string)
let il = Alcotest.(list int)

(* A nest of spans, events and metrics used by several cases. *)
let workload () =
  Obs.span ~cat:"t" "outer" (fun () ->
      Obs.span ~cat:"t" "inner"
        ~args:[ ("k", Obs.Event.V_string "v\"quote\u{00e9}") ]
        (fun () -> Obs.event ~cat:"t" "tick" ~args:[ ("n", Obs.Event.V_int 3) ]);
      Obs.span ~cat:"t" "inner2" (fun () -> ()))

(* ---- spans -------------------------------------------------------------- *)

let span_tests =
  [
    Alcotest.test_case "nesting and ordering through the memory sink" `Quick
      (fun () ->
        let events = with_memory workload in
        Alcotest.(check sl)
          "names"
          [ "outer"; "inner"; "tick"; "inner"; "inner2"; "inner2"; "outer" ]
          (names events);
        Alcotest.(check sl)
          "phases"
          [ "B"; "B"; "i"; "E"; "B"; "E"; "E" ]
          (phases events);
        Alcotest.(check il) "depths" [ 0; 1; 2; 1; 1; 1; 0 ] (depths events);
        Alcotest.(check il) "seq is 1..n"
          (List.init (List.length events) (fun i -> i + 1))
          (List.map (fun (e : Obs.Event.t) -> e.Obs.Event.seq) events));
    Alcotest.test_case "span end carries wall time and allocations" `Quick
      (fun () ->
        let events =
          with_memory (fun () ->
              Obs.span "work" (fun () -> ignore (List.init 1000 Fun.id)))
        in
        match List.rev events with
        | { Obs.Event.kind = Obs.Event.Span_end { wall_ns; alloc_bytes }; _ }
          :: _ ->
            Alcotest.(check bool) "wall >= 0" true (Int64.compare wall_ns 0L >= 0);
            Alcotest.(check bool) "allocated something" true (alloc_bytes > 0.)
        | _ -> Alcotest.fail "last event is not a span end");
    Alcotest.test_case "exception still closes the span" `Quick (fun () ->
        let events =
          with_memory (fun () ->
              try
                Obs.span "outer" (fun () ->
                    Obs.span "boom" (fun () -> failwith "no"))
              with Failure _ -> ())
        in
        Alcotest.(check sl)
          "phases" [ "B"; "B"; "E"; "E" ] (phases events);
        Alcotest.(check il) "depth restored" [ 0; 1; 1; 0 ] (depths events));
    Alcotest.test_case "return value passes through" `Quick (fun () ->
        let v = with_memory (fun () -> ignore (Obs.span "s" (fun () -> 41 + 1))) in
        ignore v;
        Obs.reset ();
        Alcotest.(check int) "disabled too" 42 (Obs.span "s" (fun () -> 42)));
  ]

(* ---- null sink ---------------------------------------------------------- *)

let null_tests =
  [
    Alcotest.test_case "null sink is a no-op" `Quick (fun () ->
        Obs.reset ();
        Alcotest.(check bool) "disabled" false (Obs.enabled ());
        workload ();
        Alcotest.(check int) "no sequence numbers consumed" 0 (Obs.Span.seq ());
        Alcotest.(check int) "depth untouched" 0 (Obs.Span.depth ()));
    Alcotest.test_case "metrics disabled by default" `Quick (fun () ->
        Obs.reset ();
        Obs.incr "c" [];
        Obs.observe "h" [] 1.0;
        Obs.gauge "g" [] 2.0;
        Alcotest.(check int) "registry empty" 0
          (List.length (Obs.Metric.rows ())));
  ]

(* ---- metrics ------------------------------------------------------------ *)

let find_row metric rows =
  match
    List.find_opt (fun (r : Obs.Metric.row) -> r.Obs.Metric.metric = metric) rows
  with
  | Some r -> r
  | None -> Alcotest.failf "missing metric row %s" metric

let metric_tests =
  [
    Alcotest.test_case "counter arithmetic and labels" `Quick (fun () ->
        Obs.reset ();
        Obs.Metric.enable ();
        Fun.protect ~finally:Obs.reset (fun () ->
            Obs.incr "hits" [];
            Obs.incr "hits" [] ~by:2.5;
            Obs.incr "hits" [ ("who", "a") ];
            let rows = Obs.Metric.rows () in
            Alcotest.(check (float 1e-9))
              "plain" 3.5
              (find_row "hits" rows).Obs.Metric.value;
            Alcotest.(check (float 1e-9))
              "labelled" 1.0
              (find_row "hits{who=a}" rows).Obs.Metric.value));
    Alcotest.test_case "gauge keeps the last value" `Quick (fun () ->
        Obs.reset ();
        Obs.Metric.enable ();
        Fun.protect ~finally:Obs.reset (fun () ->
            Obs.gauge "depth" [] 4.0;
            Obs.gauge "depth" [] 7.0;
            Alcotest.(check (float 1e-9))
              "last write wins" 7.0
              (find_row "depth" (Obs.Metric.rows ())).Obs.Metric.value));
    Alcotest.test_case "histogram count/sum/min/max/mean" `Quick (fun () ->
        Obs.reset ();
        Obs.Metric.enable ();
        Fun.protect ~finally:Obs.reset (fun () ->
            List.iter (Obs.observe "lat" [] ~unit_:"ms") [ 1.0; 2.0; 3.0 ];
            let rows = Obs.Metric.rows () in
            let v m = (find_row m rows).Obs.Metric.value in
            Alcotest.(check (float 1e-9)) "count" 3.0 (v "lat.count");
            Alcotest.(check (float 1e-9)) "sum" 6.0 (v "lat.sum");
            Alcotest.(check (float 1e-9)) "min" 1.0 (v "lat.min");
            Alcotest.(check (float 1e-9)) "max" 3.0 (v "lat.max");
            Alcotest.(check (float 1e-9)) "mean" 2.0 (v "lat.mean");
            Alcotest.(check string)
              "unit" "ms" (find_row "lat.sum" rows).Obs.Metric.unit_));
    Alcotest.test_case "snapshot rows render as valid JSON" `Quick (fun () ->
        Obs.reset ();
        Obs.Metric.enable ();
        Fun.protect ~finally:Obs.reset (fun () ->
            Obs.incr "c\"tricky\nname" [ ("k", "v") ];
            Obs.observe "h" [] 0.5;
            check_json "metrics snapshot"
              (Obs.Metric.rows_to_json ~experiment:"E0" (Obs.Metric.rows ()))));
  ]

(* ---- trace formats ------------------------------------------------------ *)

let format_tests =
  [
    Alcotest.test_case "chrome trace is valid JSON with balanced B/E" `Quick
      (fun () ->
        let events = with_memory workload in
        let trace = Obs.Sink.chrome_of_events events in
        check_json "chrome trace" trace;
        let count ph =
          List.length
            (List.filter (fun (e : Obs.Event.t) ->
                 Obs.Event.phase e.Obs.Event.kind = ph)
               events)
        in
        Alcotest.(check int) "every B has an E" (count "B") (count "E"));
    Alcotest.test_case "empty trace still renders" `Quick (fun () ->
        check_json "empty chrome trace" (Obs.Sink.chrome_of_events []));
    Alcotest.test_case "jsonl: one valid JSON object per line" `Quick (fun () ->
        Obs.reset ();
        let buf = Buffer.create 256 in
        Obs.set_sink (Obs.Sink.jsonl buf);
        Fun.protect ~finally:Obs.reset workload;
        let lines =
          List.filter
            (fun l -> String.trim l <> "")
            (String.split_on_char '\n' (Buffer.contents buf))
        in
        Alcotest.(check int) "7 events" 7 (List.length lines);
        List.iter (check_json "jsonl line") lines);
    Alcotest.test_case "chrome sink buffers and renders the same stream" `Quick
      (fun () ->
        Obs.reset ();
        let sink, render = Obs.Sink.chrome () in
        Obs.set_sink sink;
        Fun.protect ~finally:Obs.reset workload;
        check_json "chrome()" (render ()));
  ]

(* ---- determinism -------------------------------------------------------- *)

let determinism_tests =
  [
    Alcotest.test_case "two identical runs agree modulo timestamps" `Quick
      (fun () ->
        let run () = List.map Obs.Event.normalize (with_memory workload) in
        let a = run () and b = run () in
        Alcotest.(check bool) "equal after normalize" true (a = b));
    Alcotest.test_case "an instrumented engine apply is deterministic" `Quick
      (fun () ->
        let m = Fixtures.banking () in
        let cmt =
          Transform.Cmt.specialize_exn Concerns.Transactions.transformation
            [
              ( "transactional",
                Transform.Params.V_list [ Transform.Params.V_ident "Account" ]
              );
            ]
        in
        let run () =
          List.map Obs.Event.normalize
            (with_memory (fun () ->
                 match Transform.Engine.apply cmt m with
                 | Ok _ -> ()
                 | Error f ->
                     Alcotest.failf "%s"
                       (Format.asprintf "%a" Transform.Engine.pp_failure f)))
        in
        let a = run () and b = run () in
        Alcotest.(check bool) "equal after normalize" true (a = b);
        Alcotest.(check bool)
          "engine spans present" true
          (List.mem "engine.apply" (names a)
          && List.mem "engine.diff" (names a)
          && List.mem "engine.wf" (names a)
          && List.mem "report.make" (names a)));
  ]

(* ---- hist ---------------------------------------------------------------- *)

(* Deterministic pseudo-random stream (reproducible without qcheck): the
   48-bit drand48 LCG, high bits used for the modulus. *)
let lcg seed =
  let state = ref seed in
  fun bound ->
    state := ((!state * 25214903917) + 11) land 0xFFFF_FFFF_FFFF;
    (!state lsr 16) mod bound

(* Nearest-rank quantile over the actual samples — the ground truth the
   bucketed estimate must stay within 1/16 of. *)
let reference_quantile values q =
  let arr = Array.of_list values in
  Array.sort compare arr;
  let n = Array.length arr in
  let rank =
    let r = int_of_float (ceil (q *. float_of_int n)) in
    if r < 1 then 1 else if r > n then n else r
  in
  arr.(rank - 1)

let hist_tests =
  [
    Alcotest.test_case "quantiles track a sorted-array reference" `Quick
      (fun () ->
        let next = lcg 7 in
        (* mixed magnitudes: exact small values through multi-million ns *)
        let values =
          List.init 10_000 (fun _ ->
              match next 3 with
              | 0 -> float_of_int (next 16)
              | 1 -> float_of_int (next 10_000)
              | _ -> float_of_int (next 50_000_000))
        in
        let h = Obs.Hist.create () in
        List.iter (Obs.Hist.observe h) values;
        List.iter
          (fun q ->
            let est = Obs.Hist.quantile h q in
            let ref_v = reference_quantile values q in
            Alcotest.(check bool)
              (Printf.sprintf "q%.2f=%g >= reference %g" q est ref_v)
              true (est >= ref_v);
            (* one sub-bucket of relative error, one quantum absolute for
               the exact range *)
            let bound = Float.max (ref_v *. (1. +. 1. /. 16.)) (ref_v +. 1.) in
            Alcotest.(check bool)
              (Printf.sprintf "q%.2f=%g <= %g" q est bound)
              true (est <= bound);
            Alcotest.(check bool)
              "never above the recorded max" true
              (est <= Obs.Hist.max_value h))
          [ 0.5; 0.9; 0.99; 1.0 ])
    ;
    Alcotest.test_case "bucket boundaries" `Quick (fun () ->
        (* exact through 31: identity buckets *)
        for v = 0 to 31 do
          Alcotest.(check int)
            (Printf.sprintf "index of %d" v)
            v
            (Obs.Hist.index_of_value (float_of_int v))
        done;
        (* every bucket brackets its members and chains to the next *)
        List.iter
          (fun v ->
            let idx = Obs.Hist.index_of_value (float_of_int v) in
            Alcotest.(check bool)
              (Printf.sprintf "%d >= lower" v)
              true
              (float_of_int v >= Obs.Hist.lower_bound idx);
            Alcotest.(check bool)
              (Printf.sprintf "%d < upper" v)
              true
              (float_of_int v < Obs.Hist.upper_bound idx))
          [ 32; 33; 255; 256; 257; 4095; 4096; 1_000_000; 1_000_000_007 ];
        Alcotest.(check (float 0.))
          "buckets tile: upper i = lower i+1"
          (Obs.Hist.upper_bound 100)
          (Obs.Hist.lower_bound 101);
        (* totality: garbage lands at the edges instead of raising *)
        Alcotest.(check int) "negative -> 0" 0 (Obs.Hist.index_of_value (-5.));
        Alcotest.(check int) "nan -> 0" 0 (Obs.Hist.index_of_value Float.nan);
        (* beyond 2^62 everything clamps into max_int's bucket *)
        Alcotest.(check int)
          "huge -> max_int's bucket"
          (Obs.Hist.index_of_value (float_of_int max_int))
          (Obs.Hist.index_of_value 1e19);
        Alcotest.(check bool)
          "that bucket is in range" true
          (Obs.Hist.index_of_value 1e19 < Obs.Hist.bucket_count))
    ;
    Alcotest.test_case "merge is exact and order-independent" `Quick (fun () ->
        let next = lcg 23 in
        let values = List.init 2_000 (fun _ -> float_of_int (next 1_000_000)) in
        let whole = Obs.Hist.create () in
        List.iter (Obs.Hist.observe whole) values;
        (* shard round-robin over 3 histograms, merge back in two orders *)
        let shards = Array.init 3 (fun _ -> Obs.Hist.create ()) in
        List.iteri
          (fun i v -> Obs.Hist.observe shards.(i mod 3) v)
          values;
        let merge order =
          let into = Obs.Hist.create () in
          List.iter (fun i -> Obs.Hist.merge_into ~into shards.(i)) order;
          into
        in
        let a = merge [ 0; 1; 2 ] and b = merge [ 2; 0; 1 ] in
        List.iter
          (fun (name, m) ->
            Alcotest.(check int)
              (name ^ " count") (Obs.Hist.count whole) (Obs.Hist.count m);
            Alcotest.(check (float 1e-6))
              (name ^ " sum") (Obs.Hist.sum whole) (Obs.Hist.sum m);
            Alcotest.(check (float 0.))
              (name ^ " min") (Obs.Hist.min_value whole) (Obs.Hist.min_value m);
            Alcotest.(check (float 0.))
              (name ^ " max") (Obs.Hist.max_value whole) (Obs.Hist.max_value m);
            Alcotest.(check bool)
              (name ^ " buckets identical") true
              (Obs.Hist.buckets whole = Obs.Hist.buckets m))
          [ ("fwd", a); ("perm", b) ])
    ;
  ]

(* ---- exposition ----------------------------------------------------------- *)

let expo_lines () = String.split_on_char '\n' (Obs.Expo.render ())

let expo_tests =
  [
    Alcotest.test_case "name sanitization" `Quick (fun () ->
        Alcotest.(check string)
          "dots" "repo_session_commit_latency_ns"
          (Obs.Expo.sanitize "repo.session.commit.latency_ns");
        Alcotest.(check string)
          "leading digit" "_9lives" (Obs.Expo.sanitize "9lives");
        Alcotest.(check string) "empty" "_" (Obs.Expo.sanitize ""))
    ;
    Alcotest.test_case "counters, gauges and histogram triples" `Quick
      (fun () ->
        Obs.reset ();
        Obs.Metric.enable ();
        Fun.protect ~finally:Obs.reset (fun () ->
            Obs.incr "req.count" [] ~by:3.;
            Obs.gauge "pool.depth" [] 4.;
            List.iter (Obs.observe "svc.lat_ns" [] ~unit_:"ns")
              [ 1.; 2.; 300.; 40_000. ];
            let text = Obs.Expo.render () in
            let has l = List.mem l (expo_lines ()) in
            Alcotest.(check bool) "counter type" true
              (has "# TYPE req_count counter");
            Alcotest.(check bool) "counter sample" true (has "req_count 3");
            Alcotest.(check bool) "gauge sample" true (has "pool_depth 4");
            Alcotest.(check bool) "histogram type" true
              (has "# TYPE svc_lat_ns histogram");
            Alcotest.(check bool) "+Inf bucket" true
              (has "svc_lat_ns_bucket{le=\"+Inf\"} 4");
            Alcotest.(check bool) "count" true (has "svc_lat_ns_count 4");
            Alcotest.(check bool) "sum" true (has "svc_lat_ns_sum 40303");
            (* bucket counts are cumulative: each le line <= the next *)
            let bucket_counts =
              List.filter_map
                (fun l ->
                  if
                    String.length l > 18
                    && String.sub l 0 18 = "svc_lat_ns_bucket{"
                  then
                    String.rindex_opt l ' '
                    |> Option.map (fun i ->
                           int_of_string
                             (String.sub l (i + 1) (String.length l - i - 1)))
                  else None)
                (expo_lines ())
            in
            Alcotest.(check bool) "several buckets" true
              (List.length bucket_counts >= 4);
            Alcotest.(check bool) "cumulative" true
              (List.for_all2 ( <= )
                 (List.filteri
                    (fun i _ -> i < List.length bucket_counts - 1)
                    bucket_counts)
                 (List.tl bucket_counts));
            ignore text))
    ;
  ]

(* ---- request context ------------------------------------------------------ *)

let request_tests =
  [
    Alcotest.test_case "events carry the ambient request/session ids" `Quick
      (fun () ->
        let events =
          with_memory (fun () ->
              Obs.with_session ~id:7 (fun () ->
                  Obs.with_request ~id:42 (fun () -> Obs.event "inside"));
              Obs.event "outside")
        in
        match events with
        | [ inside; outside ] ->
            Alcotest.(check int) "req" 42 inside.Obs.Event.req;
            Alcotest.(check int) "sess" 7 inside.Obs.Event.sess;
            Alcotest.(check int) "req restored" 0 outside.Obs.Event.req;
            Alcotest.(check int) "sess restored" 0 outside.Obs.Event.sess
        | _ -> Alcotest.fail "expected two events")
    ;
    Alcotest.test_case "fresh request ids are distinct and increasing" `Quick
      (fun () ->
        Obs.reset ();
        let a = Obs.with_request (fun () -> Obs.request_id ()) in
        let b = Obs.with_request (fun () -> Obs.request_id ()) in
        Alcotest.(check bool) "a > 0" true (a > 0);
        Alcotest.(check bool) "b > a" true (b > a);
        Alcotest.(check int) "cleared outside" 0 (Obs.request_id ()))
    ;
    Alcotest.test_case "normalize zeroes request and session ids" `Quick
      (fun () ->
        let events =
          with_memory (fun () ->
              Obs.with_session ~id:3 (fun () ->
                  Obs.with_request (fun () ->
                      Obs.span "s" (fun () -> Obs.event "e"))))
        in
        List.iter
          (fun e ->
            let n = Obs.Event.normalize e in
            Alcotest.(check int) "req zeroed" 0 n.Obs.Event.req;
            Alcotest.(check int) "sess zeroed" 0 n.Obs.Event.sess;
            Alcotest.(check bool) "ts zeroed" true (n.Obs.Event.ts_ns = 0L))
          events)
    ;
  ]

(* ---- trace analysis -------------------------------------------------------- *)

let jsonl_of events =
  String.concat "" (List.map (fun e -> Obs.Event.to_json e ^ "\n") events)

let trace_tests =
  [
    Alcotest.test_case "JSONL round-trips through parse" `Quick (fun () ->
        let events =
          with_memory (fun () ->
              Obs.with_session ~id:2 (fun () ->
                  Obs.with_request ~id:9 (fun () -> workload ())))
        in
        match Obs.Trace.parse (jsonl_of events) with
        | Error msg -> Alcotest.failf "parse failed: %s" msg
        | Ok parsed ->
            (* ts_ns exceeds the float mantissa, so compare normalized *)
            Alcotest.(check bool) "events equal modulo timestamps" true
              (List.map Obs.Event.normalize parsed
              = List.map Obs.Event.normalize events);
            Alcotest.(check bool) "ids survive the round trip" true
              (List.for_all
                 (fun (e : Obs.Event.t) ->
                   e.Obs.Event.req = 9 && e.Obs.Event.sess = 2)
                 parsed))
    ;
    Alcotest.test_case "bad lines fail with their line number" `Quick
      (fun () ->
        match Obs.Trace.parse "{\"ph\":\"i\"}\nnot json\n" with
        | Ok _ -> Alcotest.fail "expected an error"
        | Error msg ->
            Alcotest.(check bool)
              (Printf.sprintf "mentions line 2: %s" msg)
              true
              (String.length msg >= 7 && String.sub msg 0 7 = "line 2:"))
    ;
    Alcotest.test_case "summarize counts and critical path" `Quick (fun () ->
        let events =
          with_memory (fun () ->
              Obs.with_session ~id:1 (fun () ->
                  Obs.with_request ~id:1 (fun () ->
                      Obs.span ~cat:"repo" "outer" (fun () ->
                          Obs.span ~cat:"repo" "heavy" (fun () ->
                              ignore (Sys.opaque_identity (List.init 100 Fun.id)))));
                  Obs.with_request ~id:2 (fun () ->
                      Obs.event ~cat:"repo" "ping")))
        in
        let text = Obs.Trace.summarize events in
        let first =
          match String.split_on_char '\n' text with l :: _ -> l | [] -> ""
        in
        Alcotest.(check string)
          "header" "trace: 5 event(s), 1 domain(s), 2 request(s), 1 session(s)"
          first;
        Alcotest.(check bool) "critical path descends" true
          (let open String in
           length text > 0
           &&
           let rec contains i =
             i + 13 <= length text
             && (equal (sub text i 13) "outer > heavy" || contains (i + 1))
           in
           contains 0))
    ;
    Alcotest.test_case "slice keeps exactly the matching events" `Quick
      (fun () ->
        let events =
          with_memory (fun () ->
              Obs.with_session ~id:1 (fun () ->
                  Obs.with_request ~id:1 (fun () -> Obs.event "a");
                  Obs.with_request ~id:2 (fun () -> Obs.event "b"));
              Obs.with_session ~id:2 (fun () ->
                  Obs.with_request ~id:3 (fun () -> Obs.event "c")))
        in
        Alcotest.(check sl) "by request" [ "b" ]
          (names (Obs.Trace.slice ~req:2 events));
        Alcotest.(check sl) "by session" [ "a"; "b" ]
          (names (Obs.Trace.slice ~sess:1 events));
        Alcotest.(check sl) "conjunction" [ "c" ]
          (names (Obs.Trace.slice ~req:3 ~sess:2 events));
        Alcotest.(check sl) "empty" []
          (names (Obs.Trace.slice ~req:1 ~sess:2 events)))
    ;
  ]

(* ---- regression gate ------------------------------------------------------- *)

let snapshot_json rows =
  "[\n"
  ^ String.concat ",\n"
      (List.map
         (fun (e, m, v, u) ->
           Printf.sprintf
             "{\"experiment\":\"%s\",\"metric\":\"%s\",\"value\":%g,\"unit\":\"%s\"}"
             e m v u)
         rows)
  ^ "\n]\n"

let regress_tests =
  [
    Alcotest.test_case "direction comes from the unit" `Quick (fun () ->
        let old_rows =
          snapshot_json
            [
              ("E", "t", 100., "ns/run");
              ("E", "s", 10., "x");
              ("E", "c", 5., "count");
            ]
        in
        let new_rows =
          snapshot_json
            [
              ("E", "t", 300., "ns/run") (* 3x slower: regression *);
              ("E", "s", 30., "x") (* 3x more speedup: improvement *);
              ("E", "c", 50., "count") (* counters are informational *);
            ]
        in
        let parse s =
          match Obs.Regress.parse s with
          | Ok r -> r
          | Error m -> Alcotest.failf "parse: %s" m
        in
        let entries =
          Obs.Regress.compare_snapshots ~tolerance:50. (parse old_rows)
            (parse new_rows)
        in
        let verdict metric =
          match
            List.find_opt (fun (e : Obs.Regress.entry) -> snd e.key = metric)
              entries
          with
          | Some e -> e.Obs.Regress.verdict
          | None -> Alcotest.failf "missing entry %s" metric
        in
        Alcotest.(check bool) "ns/run regressed" true
          (verdict "t" = Obs.Regress.Regressed);
        Alcotest.(check bool) "x improved" true
          (verdict "s" = Obs.Regress.Improved);
        Alcotest.(check bool) "count informational" true
          (verdict "c" = Obs.Regress.Info);
        Alcotest.(check int) "gate fails" 1 (Obs.Regress.gate entries))
    ;
    Alcotest.test_case "tolerance, added and removed rows never gate" `Quick
      (fun () ->
        let parse s =
          match Obs.Regress.parse s with
          | Ok r -> r
          | Error m -> Alcotest.failf "parse: %s" m
        in
        let olds =
          parse
            (snapshot_json
               [ ("E", "t", 100., "ns/run"); ("E", "gone", 1., "ns/run") ])
        in
        let news =
          parse
            (snapshot_json
               [ ("E", "t", 109., "ns/run"); ("E", "fresh", 1., "ns/run") ])
        in
        let entries = Obs.Regress.compare_snapshots ~tolerance:10. olds news in
        Alcotest.(check int) "within tolerance + churn passes" 0
          (Obs.Regress.gate entries);
        Alcotest.(check bool) "added reported" true
          (List.exists
             (fun (e : Obs.Regress.entry) ->
               e.Obs.Regress.verdict = Obs.Regress.Added)
             entries);
        Alcotest.(check bool) "removed reported" true
          (List.exists
             (fun (e : Obs.Regress.entry) ->
               e.Obs.Regress.verdict = Obs.Regress.Removed)
             entries))
    ;
  ]

let () =
  Alcotest.run "obs"
    [
      ("span", span_tests);
      ("null", null_tests);
      ("metric", metric_tests);
      ("format", format_tests);
      ("determinism", determinism_tests);
      ("hist", hist_tests);
      ("expo", expo_tests);
      ("request", request_tests);
      ("trace", trace_tests);
      ("regress", regress_tests);
    ]
