(* lib/obs — spans, metrics, sinks, trace export.

   Covers: span nesting/ordering through the memory sink, exception
   safety, counter/gauge/histogram arithmetic, null-sink no-op behaviour,
   JSONL and Chrome trace well-formedness (validated with the minimal JSON
   parser below), and determinism of the event stream modulo timestamps. *)

(* ---- a minimal JSON syntax checker ------------------------------------ *)

(* Accepts exactly the JSON grammar (RFC 8259) we emit; returns an error
   message on the first syntax violation. No AST — validation only. *)
module Json_check = struct
  exception Bad of string

  let check (s : string) : (unit, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some x when x = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word =
      String.iter (fun c -> expect c) word
    in
    let hex_digit () =
      match peek () with
      | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
      | _ -> fail "bad \\u escape"
    in
    let string_ () =
      expect '"';
      let rec chars () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
                advance ();
                chars ()
            | Some 'u' ->
                advance ();
                hex_digit ();
                hex_digit ();
                hex_digit ();
                hex_digit ();
                chars ()
            | _ -> fail "bad escape")
        | Some c when Char.code c < 0x20 -> fail "raw control char in string"
        | Some _ ->
            advance ();
            chars ()
      in
      chars ()
    in
    let digits () =
      let saw = ref false in
      let rec loop () =
        match peek () with
        | Some '0' .. '9' ->
            saw := true;
            advance ();
            loop ()
        | _ -> ()
      in
      loop ();
      if not !saw then fail "expected digit"
    in
    let number () =
      (match peek () with Some '-' -> advance () | _ -> ());
      digits ();
      (match peek () with
      | Some '.' ->
          advance ();
          digits ()
      | _ -> ());
      match peek () with
      | Some ('e' | 'E') ->
          advance ();
          (match peek () with Some ('+' | '-') -> advance () | _ -> ());
          digits ()
      | _ -> ()
    in
    let rec value () =
      skip_ws ();
      (match peek () with
      | Some '{' -> obj ()
      | Some '[' -> array_ ()
      | Some '"' -> string_ ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | Some ('-' | '0' .. '9') -> number ()
      | _ -> fail "expected value");
      skip_ws ()
    and obj () =
      expect '{';
      skip_ws ();
      (match peek () with
      | Some '}' -> advance ()
      | _ ->
          let rec members () =
            skip_ws ();
            string_ ();
            skip_ws ();
            expect ':';
            value ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | _ -> expect '}'
          in
          members ())
    and array_ () =
      expect '[';
      skip_ws ();
      match peek () with
      | Some ']' -> advance ()
      | _ ->
          let rec elements () =
            value ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | _ -> expect ']'
          in
          elements ()
    in
    match
      value ();
      skip_ws ();
      if !pos <> n then fail "trailing garbage"
    with
    | () -> Ok ()
    | exception Bad msg -> Error msg
end

let check_json what s =
  match Json_check.check s with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: invalid JSON: %s\n%s" what msg s

(* ---- helpers ----------------------------------------------------------- *)

(* Run [f] against a fresh memory sink from a clean obs state; returns the
   recorded events, with the global state reset afterwards. *)
let with_memory f =
  Obs.reset ();
  let sink, events = Obs.Sink.memory () in
  Obs.set_sink sink;
  Fun.protect ~finally:Obs.reset (fun () ->
      f ();
      events ())

let names events = List.map (fun (e : Obs.Event.t) -> e.Obs.Event.name) events
let phases events =
  List.map (fun (e : Obs.Event.t) -> Obs.Event.phase e.Obs.Event.kind) events
let depths events = List.map (fun (e : Obs.Event.t) -> e.Obs.Event.depth) events

let sl = Alcotest.(list string)
let il = Alcotest.(list int)

(* A nest of spans, events and metrics used by several cases. *)
let workload () =
  Obs.span ~cat:"t" "outer" (fun () ->
      Obs.span ~cat:"t" "inner"
        ~args:[ ("k", Obs.Event.V_string "v\"quote\u{00e9}") ]
        (fun () -> Obs.event ~cat:"t" "tick" ~args:[ ("n", Obs.Event.V_int 3) ]);
      Obs.span ~cat:"t" "inner2" (fun () -> ()))

(* ---- spans -------------------------------------------------------------- *)

let span_tests =
  [
    Alcotest.test_case "nesting and ordering through the memory sink" `Quick
      (fun () ->
        let events = with_memory workload in
        Alcotest.(check sl)
          "names"
          [ "outer"; "inner"; "tick"; "inner"; "inner2"; "inner2"; "outer" ]
          (names events);
        Alcotest.(check sl)
          "phases"
          [ "B"; "B"; "i"; "E"; "B"; "E"; "E" ]
          (phases events);
        Alcotest.(check il) "depths" [ 0; 1; 2; 1; 1; 1; 0 ] (depths events);
        Alcotest.(check il) "seq is 1..n"
          (List.init (List.length events) (fun i -> i + 1))
          (List.map (fun (e : Obs.Event.t) -> e.Obs.Event.seq) events));
    Alcotest.test_case "span end carries wall time and allocations" `Quick
      (fun () ->
        let events =
          with_memory (fun () ->
              Obs.span "work" (fun () -> ignore (List.init 1000 Fun.id)))
        in
        match List.rev events with
        | { Obs.Event.kind = Obs.Event.Span_end { wall_ns; alloc_bytes }; _ }
          :: _ ->
            Alcotest.(check bool) "wall >= 0" true (Int64.compare wall_ns 0L >= 0);
            Alcotest.(check bool) "allocated something" true (alloc_bytes > 0.)
        | _ -> Alcotest.fail "last event is not a span end");
    Alcotest.test_case "exception still closes the span" `Quick (fun () ->
        let events =
          with_memory (fun () ->
              try
                Obs.span "outer" (fun () ->
                    Obs.span "boom" (fun () -> failwith "no"))
              with Failure _ -> ())
        in
        Alcotest.(check sl)
          "phases" [ "B"; "B"; "E"; "E" ] (phases events);
        Alcotest.(check il) "depth restored" [ 0; 1; 1; 0 ] (depths events));
    Alcotest.test_case "return value passes through" `Quick (fun () ->
        let v = with_memory (fun () -> ignore (Obs.span "s" (fun () -> 41 + 1))) in
        ignore v;
        Obs.reset ();
        Alcotest.(check int) "disabled too" 42 (Obs.span "s" (fun () -> 42)));
  ]

(* ---- null sink ---------------------------------------------------------- *)

let null_tests =
  [
    Alcotest.test_case "null sink is a no-op" `Quick (fun () ->
        Obs.reset ();
        Alcotest.(check bool) "disabled" false (Obs.enabled ());
        workload ();
        Alcotest.(check int) "no sequence numbers consumed" 0 (Obs.Span.seq ());
        Alcotest.(check int) "depth untouched" 0 (Obs.Span.depth ()));
    Alcotest.test_case "metrics disabled by default" `Quick (fun () ->
        Obs.reset ();
        Obs.incr "c" [];
        Obs.observe "h" [] 1.0;
        Obs.gauge "g" [] 2.0;
        Alcotest.(check int) "registry empty" 0
          (List.length (Obs.Metric.rows ())));
  ]

(* ---- metrics ------------------------------------------------------------ *)

let find_row metric rows =
  match
    List.find_opt (fun (r : Obs.Metric.row) -> r.Obs.Metric.metric = metric) rows
  with
  | Some r -> r
  | None -> Alcotest.failf "missing metric row %s" metric

let metric_tests =
  [
    Alcotest.test_case "counter arithmetic and labels" `Quick (fun () ->
        Obs.reset ();
        Obs.Metric.enable ();
        Fun.protect ~finally:Obs.reset (fun () ->
            Obs.incr "hits" [];
            Obs.incr "hits" [] ~by:2.5;
            Obs.incr "hits" [ ("who", "a") ];
            let rows = Obs.Metric.rows () in
            Alcotest.(check (float 1e-9))
              "plain" 3.5
              (find_row "hits" rows).Obs.Metric.value;
            Alcotest.(check (float 1e-9))
              "labelled" 1.0
              (find_row "hits{who=a}" rows).Obs.Metric.value));
    Alcotest.test_case "gauge keeps the last value" `Quick (fun () ->
        Obs.reset ();
        Obs.Metric.enable ();
        Fun.protect ~finally:Obs.reset (fun () ->
            Obs.gauge "depth" [] 4.0;
            Obs.gauge "depth" [] 7.0;
            Alcotest.(check (float 1e-9))
              "last write wins" 7.0
              (find_row "depth" (Obs.Metric.rows ())).Obs.Metric.value));
    Alcotest.test_case "histogram count/sum/min/max/mean" `Quick (fun () ->
        Obs.reset ();
        Obs.Metric.enable ();
        Fun.protect ~finally:Obs.reset (fun () ->
            List.iter (Obs.observe "lat" [] ~unit_:"ms") [ 1.0; 2.0; 3.0 ];
            let rows = Obs.Metric.rows () in
            let v m = (find_row m rows).Obs.Metric.value in
            Alcotest.(check (float 1e-9)) "count" 3.0 (v "lat.count");
            Alcotest.(check (float 1e-9)) "sum" 6.0 (v "lat.sum");
            Alcotest.(check (float 1e-9)) "min" 1.0 (v "lat.min");
            Alcotest.(check (float 1e-9)) "max" 3.0 (v "lat.max");
            Alcotest.(check (float 1e-9)) "mean" 2.0 (v "lat.mean");
            Alcotest.(check string)
              "unit" "ms" (find_row "lat.sum" rows).Obs.Metric.unit_));
    Alcotest.test_case "snapshot rows render as valid JSON" `Quick (fun () ->
        Obs.reset ();
        Obs.Metric.enable ();
        Fun.protect ~finally:Obs.reset (fun () ->
            Obs.incr "c\"tricky\nname" [ ("k", "v") ];
            Obs.observe "h" [] 0.5;
            check_json "metrics snapshot"
              (Obs.Metric.rows_to_json ~experiment:"E0" (Obs.Metric.rows ()))));
  ]

(* ---- trace formats ------------------------------------------------------ *)

let format_tests =
  [
    Alcotest.test_case "chrome trace is valid JSON with balanced B/E" `Quick
      (fun () ->
        let events = with_memory workload in
        let trace = Obs.Sink.chrome_of_events events in
        check_json "chrome trace" trace;
        let count ph =
          List.length
            (List.filter (fun (e : Obs.Event.t) ->
                 Obs.Event.phase e.Obs.Event.kind = ph)
               events)
        in
        Alcotest.(check int) "every B has an E" (count "B") (count "E"));
    Alcotest.test_case "empty trace still renders" `Quick (fun () ->
        check_json "empty chrome trace" (Obs.Sink.chrome_of_events []));
    Alcotest.test_case "jsonl: one valid JSON object per line" `Quick (fun () ->
        Obs.reset ();
        let buf = Buffer.create 256 in
        Obs.set_sink (Obs.Sink.jsonl buf);
        Fun.protect ~finally:Obs.reset workload;
        let lines =
          List.filter
            (fun l -> String.trim l <> "")
            (String.split_on_char '\n' (Buffer.contents buf))
        in
        Alcotest.(check int) "7 events" 7 (List.length lines);
        List.iter (check_json "jsonl line") lines);
    Alcotest.test_case "chrome sink buffers and renders the same stream" `Quick
      (fun () ->
        Obs.reset ();
        let sink, render = Obs.Sink.chrome () in
        Obs.set_sink sink;
        Fun.protect ~finally:Obs.reset workload;
        check_json "chrome()" (render ()));
  ]

(* ---- determinism -------------------------------------------------------- *)

let determinism_tests =
  [
    Alcotest.test_case "two identical runs agree modulo timestamps" `Quick
      (fun () ->
        let run () = List.map Obs.Event.normalize (with_memory workload) in
        let a = run () and b = run () in
        Alcotest.(check bool) "equal after normalize" true (a = b));
    Alcotest.test_case "an instrumented engine apply is deterministic" `Quick
      (fun () ->
        let m = Fixtures.banking () in
        let cmt =
          Transform.Cmt.specialize_exn Concerns.Transactions.transformation
            [
              ( "transactional",
                Transform.Params.V_list [ Transform.Params.V_ident "Account" ]
              );
            ]
        in
        let run () =
          List.map Obs.Event.normalize
            (with_memory (fun () ->
                 match Transform.Engine.apply cmt m with
                 | Ok _ -> ()
                 | Error f ->
                     Alcotest.failf "%s"
                       (Format.asprintf "%a" Transform.Engine.pp_failure f)))
        in
        let a = run () and b = run () in
        Alcotest.(check bool) "equal after normalize" true (a = b);
        Alcotest.(check bool)
          "engine spans present" true
          (List.mem "engine.apply" (names a)
          && List.mem "engine.diff" (names a)
          && List.mem "engine.wf" (names a)
          && List.mem "report.make" (names a)));
  ]

let () =
  Alcotest.run "obs"
    [
      ("span", span_tests);
      ("null", null_tests);
      ("metric", metric_tests);
      ("format", format_tests);
      ("determinism", determinism_tests);
    ]
