(* Tests for the OCL subset: lexer, parser, values, evaluator, constraints,
   typechecker. *)

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

let empty_model = Mof.Model.create ~name:"empty"

let eval ?(m = empty_model) ?(env = Ocl.Env.empty) src =
  Ocl.Eval.eval_string m env src

let eval_s ?m ?env src = Ocl.Value.to_string (eval ?m ?env src)

let expect_eval ?m ?env expected src =
  check cs src expected (eval_s ?m ?env src)

let expect_error ?(m = empty_model) src =
  check cb src true
    (try
       ignore (Ocl.Eval.eval_string m Ocl.Env.empty src);
       false
     with Ocl.Eval.Eval_error _ -> true)

(* ---- lexer ------------------------------------------------------------ *)

let lexer_tests =
  let token_strings src =
    List.map
      (fun (t : Ocl.Token.located) -> Ocl.Token.to_string t.Ocl.Token.token)
      (Ocl.Lexer.tokenize src)
  in
  [
    Alcotest.test_case "operators and punctuation" `Quick (fun () ->
        check (Alcotest.list cs) "ops"
          [ "->"; "."; "<>"; "<="; ">="; "<"; ">"; "="; "|"; "<eof>" ]
          (token_strings "-> . <> <= >= < > = |"));
    Alcotest.test_case "comments are skipped" `Quick (fun () ->
        check (Alcotest.list cs) "comment"
          [ "1"; "2"; "<eof>" ]
          (token_strings "1 -- a comment\n2"));
    Alcotest.test_case "string literal with escaped quote" `Quick (fun () ->
        match Ocl.Lexer.tokenize "'it''s'" with
        | [ { Ocl.Token.token = Ocl.Token.String s; _ }; _ ] ->
            check cs "contents" "it's" s
        | _ -> Alcotest.fail "unexpected token stream");
    Alcotest.test_case "numbers" `Quick (fun () ->
        check (Alcotest.list cs) "ints and reals"
          [ "42"; "3.5"; "<eof>" ]
          (token_strings "42 3.5"));
    Alcotest.test_case "minus is its own token" `Quick (fun () ->
        check (Alcotest.list cs) "minus" [ "-"; "7"; "<eof>" ] (token_strings "-7"));
    Alcotest.test_case "keywords recognized" `Quick (fun () ->
        check (Alcotest.list cs) "kw"
          [ "if"; "then"; "else"; "endif"; "and"; "not"; "implies"; "<eof>" ]
          (token_strings "if then else endif and not implies"));
    Alcotest.test_case "unterminated string raises" `Quick (fun () ->
        check cb "raises" true
          (try
             ignore (Ocl.Lexer.tokenize "'oops");
             false
           with Ocl.Lexer.Lexical_error _ -> true));
    Alcotest.test_case "unexpected character raises" `Quick (fun () ->
        check cb "raises" true
          (try
             ignore (Ocl.Lexer.tokenize "a # b");
             false
           with Ocl.Lexer.Lexical_error _ -> true));
    Alcotest.test_case "positions recorded" `Quick (fun () ->
        match Ocl.Lexer.tokenize "ab cd" with
        | [ a; b; _eof ] ->
            check ci "first" 0 a.Ocl.Token.pos;
            check ci "second" 3 b.Ocl.Token.pos
        | _ -> Alcotest.fail "unexpected token stream");
  ]

(* ---- parser ----------------------------------------------------------- *)

let parses src = match Ocl.Parser.parse_opt src with Ok _ -> true | Error _ -> false

let parser_tests =
  [
    Alcotest.test_case "arithmetic precedence" `Quick (fun () ->
        check cs "mul binds tighter" "(1 + (2 * 3))"
          (Ocl.Ast.to_string (Ocl.Parser.parse "1 + 2 * 3")));
    Alcotest.test_case "boolean precedence" `Quick (fun () ->
        check cs "and over or" "(true or (false and true))"
          (Ocl.Ast.to_string (Ocl.Parser.parse "true or false and true")));
    Alcotest.test_case "implies is right-associative" `Quick (fun () ->
        check cs "implies" "(true implies (false implies true))"
          (Ocl.Ast.to_string (Ocl.Parser.parse "true implies false implies true")));
    Alcotest.test_case "relational below additive" `Quick (fun () ->
        check cs "rel" "((1 + 2) < (3 * 4))"
          (Ocl.Ast.to_string (Ocl.Parser.parse "1 + 2 < 3 * 4")));
    Alcotest.test_case "navigation chains" `Quick (fun () ->
        check cs "nav" "self.a.b" (Ocl.Ast.to_string (Ocl.Parser.parse "self.a.b")));
    Alcotest.test_case "iterators parse" `Quick (fun () ->
        check cb "forAll" true (parses "Set{1,2}->forAll(x | x > 0)");
        check cb "forAll2" true (parses "Set{1,2}->forAll(x, y | x = y)");
        check cb "typed var" true (parses "Set{1,2}->select(x : Integer | x > 1)");
        check cb "iterate" true
          (parses "Sequence{1,2,3}->iterate(x; acc : Integer = 0 | acc + x)"));
    Alcotest.test_case "collection literals" `Quick (fun () ->
        check cb "set" true (parses "Set{1, 2, 3}");
        check cb "empty sequence" true (parses "Sequence{}");
        check cb "bag" true (parses "Bag{1, 1}"));
    Alcotest.test_case "let and if" `Quick (fun () ->
        check cb "let" true (parses "let x = 4 in x + 1");
        check cb "let typed" true (parses "let x : Integer = 4 in x");
        check cb "if" true (parses "if true then 1 else 2 endif"));
    Alcotest.test_case "collection op without pipe is not an iterator" `Quick
      (fun () ->
        match Ocl.Parser.parse "Set{1}->includes(1)" with
        | Ocl.Ast.E_coll_op (_, "includes", [ _ ]) -> ()
        | _ -> Alcotest.fail "expected E_coll_op");
    Alcotest.test_case "pipe makes an iterator" `Quick (fun () ->
        match Ocl.Parser.parse "Set{1}->select(x | x > 0)" with
        | Ocl.Ast.E_iter (_, "select", [ "x" ], _) -> ()
        | _ -> Alcotest.fail "expected E_iter");
    Alcotest.test_case "nested pipe does not confuse the lookahead" `Quick
      (fun () ->
        match Ocl.Parser.parse "Set{Set{1}}->includes(Set{1}->select(x | x > 0))" with
        | Ocl.Ast.E_coll_op (_, "includes", [ Ocl.Ast.E_iter _ ]) -> ()
        | _ -> Alcotest.fail "expected coll_op around iter");
    Alcotest.test_case "trailing input is an error" `Quick (fun () ->
        check cb "trailing" false (parses "1 + 2 extra"));
    Alcotest.test_case "incomplete input is an error" `Quick (fun () ->
        check cb "dangling plus" false (parses "1 + ");
        check cb "unclosed paren" false (parses "(1 + 2");
        check cb "missing endif" false (parses "if true then 1 else 2"));
    Alcotest.test_case "re-parse of rendering is stable" `Quick (fun () ->
        List.iter
          (fun src ->
            let once = Ocl.Ast.to_string (Ocl.Parser.parse src) in
            let twice = Ocl.Ast.to_string (Ocl.Parser.parse once) in
            check cs src once twice)
          [
            "1 + 2 * 3 - 4 / 5";
            "Set{1,2}->forAll(x | x > 0 and x < 10)";
            "if 1 > 2 then 1 else 2 endif";
            "let x = Sequence{1}->first() in x.oclIsUndefined()";
            "'a'.concat('x').size()";
            "Sequence{1}->iterate(x; acc = 0 | acc + x)";
          ]);
    Alcotest.test_case "fold_vars sees bound and free variables" `Quick
      (fun () ->
        let e = Ocl.Parser.parse "Set{1}->forAll(x | x > y)" in
        let vars = List.rev (Ocl.Ast.fold_vars (fun v acc -> v :: acc) e []) in
        check (Alcotest.list cs) "vars" [ "x"; "x"; "y" ] vars);
  ]

(* ---- values ----------------------------------------------------------- *)

let value_tests =
  [
    Alcotest.test_case "integer/real equality" `Quick (fun () ->
        check cb "1 = 1.0" true
          (Ocl.Value.equal (Ocl.Value.V_int 1) (Ocl.Value.V_real 1.0));
        check cb "1 <> 1.5" false
          (Ocl.Value.equal (Ocl.Value.V_int 1) (Ocl.Value.V_real 1.5)));
    Alcotest.test_case "set canonicalization" `Quick (fun () ->
        match Ocl.Value.set [ Ocl.Value.V_int 3; Ocl.Value.V_int 1; Ocl.Value.V_int 3 ] with
        | Ocl.Value.V_set [ Ocl.Value.V_int 1; Ocl.Value.V_int 3 ] -> ()
        | v -> Alcotest.fail (Ocl.Value.to_string v));
    Alcotest.test_case "bag keeps duplicates sorted" `Quick (fun () ->
        match
          Ocl.Value.bag [ Ocl.Value.V_int 2; Ocl.Value.V_int 1; Ocl.Value.V_int 2 ]
        with
        | Ocl.Value.V_bag [ Ocl.Value.V_int 1; Ocl.Value.V_int 2; Ocl.Value.V_int 2 ] ->
            ()
        | v -> Alcotest.fail (Ocl.Value.to_string v));
    Alcotest.test_case "set deduplicates across int/real" `Quick (fun () ->
        match Ocl.Value.set [ Ocl.Value.V_int 1; Ocl.Value.V_real 1.0 ] with
        | Ocl.Value.V_set [ _ ] -> ()
        | v -> Alcotest.fail (Ocl.Value.to_string v));
    Alcotest.test_case "truth view" `Quick (fun () ->
        check cb "bool" true (Ocl.Value.truth (Ocl.Value.V_bool true) = Some true);
        check cb "undefined" true (Ocl.Value.truth Ocl.Value.V_undefined = None);
        check cb "int" true (Ocl.Value.truth (Ocl.Value.V_int 1) = None));
    Alcotest.test_case "type names" `Quick (fun () ->
        check cs "int" "Integer" (Ocl.Value.type_name (Ocl.Value.V_int 1));
        check cs "undef" "OclUndefined" (Ocl.Value.type_name Ocl.Value.V_undefined));
  ]

(* ---- evaluator: scalars ------------------------------------------------ *)

let arithmetic_tests =
  [
    Alcotest.test_case "integer arithmetic" `Quick (fun () ->
        expect_eval "7" "1 + 2 * 3";
        expect_eval "-1" "2 - 3";
        expect_eval "2" "7 div 3";
        expect_eval "1" "7 mod 3";
        expect_eval "-5" "-5");
    Alcotest.test_case "mixed arithmetic promotes to real" `Quick (fun () ->
        expect_eval "3.5" "1 + 2.5";
        expect_eval "5" "2.0 + 3.0");
    Alcotest.test_case "division always real" `Quick (fun () ->
        expect_eval "2.5" "5 / 2");
    Alcotest.test_case "division by zero is undefined" `Quick (fun () ->
        expect_eval "OclUndefined" "3 / 0";
        expect_eval "OclUndefined" "3 div 0";
        expect_eval "OclUndefined" "3 mod 0");
    Alcotest.test_case "numeric methods" `Quick (fun () ->
        expect_eval "5" "(-5).abs()";
        expect_eval "2" "2.9.floor()";
        expect_eval "3" "2.9.round()";
        expect_eval "7" "3.max(7)";
        expect_eval "3" "3.min(7)");
    Alcotest.test_case "comparisons" `Quick (fun () ->
        expect_eval "true" "1 < 2";
        expect_eval "true" "2.0 >= 2";
        expect_eval "true" "'abc' < 'abd'";
        expect_eval "false" "'b' <= 'a'");
    Alcotest.test_case "div/mod require integers" `Quick (fun () ->
        expect_error "2.5 div 1";
        expect_error "2.5 mod 1");
  ]

let string_tests =
  [
    Alcotest.test_case "size/concat/case" `Quick (fun () ->
        expect_eval "3" "'abc'.size()";
        expect_eval "'abcd'" "'ab'.concat('cd')";
        expect_eval "'ABC'" "'abc'.toUpper()";
        expect_eval "'abc'" "'ABC'.toLower()";
        expect_eval "'ab'" "'a' + 'b'");
    Alcotest.test_case "substring is 1-based inclusive" `Quick (fun () ->
        expect_eval "'ell'" "'hello'.substring(2, 4)";
        expect_eval "'h'" "'hello'.substring(1, 1)";
        expect_eval "OclUndefined" "'hello'.substring(0, 2)";
        expect_eval "OclUndefined" "'hello'.substring(2, 9)";
        expect_eval "''" "'hello'.substring(3, 2)");
    Alcotest.test_case "contains/startsWith/endsWith" `Quick (fun () ->
        expect_eval "true" "'hello'.contains('ell')";
        expect_eval "false" "'hello'.contains('xyz')";
        expect_eval "true" "'hello'.startsWith('he')";
        expect_eval "true" "'hello'.endsWith('lo')";
        expect_eval "false" "'hello'.startsWith('lo')");
    Alcotest.test_case "conversions" `Quick (fun () ->
        expect_eval "42" "'42'.toInteger()";
        expect_eval "OclUndefined" "'x'.toInteger()";
        expect_eval "2.5" "'2.5'.toReal()");
    Alcotest.test_case "unknown string operation is an error" `Quick (fun () ->
        expect_error "'a'.frobnicate()");
  ]

(* three-valued logic: an undefined boolean comes from (3/0) > 1 *)
let undef_bool = "((3 / 0) > 1)"

let logic_tests =
  [
    Alcotest.test_case "and truth table" `Quick (fun () ->
        expect_eval "true" "true and true";
        expect_eval "false" "true and false";
        expect_eval "false" ("false and " ^ undef_bool);
        expect_eval "false" (undef_bool ^ " and false");
        expect_eval "OclUndefined" ("true and " ^ undef_bool));
    Alcotest.test_case "or truth table" `Quick (fun () ->
        expect_eval "true" "true or false";
        expect_eval "true" ("true or " ^ undef_bool);
        expect_eval "true" (undef_bool ^ " or true");
        expect_eval "OclUndefined" ("false or " ^ undef_bool);
        expect_eval "false" "false or false");
    Alcotest.test_case "implies truth table" `Quick (fun () ->
        expect_eval "true" "false implies false";
        expect_eval "true" ("false implies " ^ undef_bool);
        expect_eval "true" (undef_bool ^ " implies true");
        expect_eval "OclUndefined" ("true implies " ^ undef_bool);
        expect_eval "false" "true implies false");
    Alcotest.test_case "not and xor" `Quick (fun () ->
        expect_eval "false" "not true";
        expect_eval "OclUndefined" ("not " ^ undef_bool);
        expect_eval "true" "true xor false";
        expect_eval "false" "true xor true";
        expect_eval "OclUndefined" ("true xor " ^ undef_bool));
    Alcotest.test_case "equality treats undefined as a value" `Quick (fun () ->
        expect_eval "true" "(3 / 0) = (1 / 0)";
        expect_eval "false" "(3 / 0) = 1");
    Alcotest.test_case "comparison with undefined is undefined" `Quick (fun () ->
        expect_eval "OclUndefined" "(3 / 0) < 1");
    Alcotest.test_case "if on undefined condition" `Quick (fun () ->
        expect_eval "OclUndefined" ("if " ^ undef_bool ^ " then 1 else 2 endif"));
    Alcotest.test_case "oclIsUndefined" `Quick (fun () ->
        expect_eval "true" "(3 / 0).oclIsUndefined()";
        expect_eval "false" "3.oclIsUndefined()");
    Alcotest.test_case "non-boolean operand is an error" `Quick (fun () ->
        expect_error "1 and true";
        expect_error "not 3");
  ]

(* ---- evaluator: collections ------------------------------------------- *)

let collection_tests =
  [
    Alcotest.test_case "size/isEmpty/notEmpty" `Quick (fun () ->
        expect_eval "3" "Sequence{1,2,3}->size()";
        expect_eval "2" "Set{1,1,2}->size()";
        expect_eval "3" "Bag{1,1,2}->size()";
        expect_eval "true" "Set{}->isEmpty()";
        expect_eval "true" "Set{1}->notEmpty()");
    Alcotest.test_case "includes family" `Quick (fun () ->
        expect_eval "true" "Set{1,2}->includes(2)";
        expect_eval "true" "Set{1,2}->excludes(3)";
        expect_eval "true" "Set{1,2,3}->includesAll(Set{1,3})";
        expect_eval "false" "Set{1,2}->includesAll(Set{1,4})";
        expect_eval "true" "Set{1,2}->excludesAll(Set{3,4})";
        expect_eval "2" "Bag{1,1,2}->count(1)");
    Alcotest.test_case "sum/max/min" `Quick (fun () ->
        expect_eval "6" "Sequence{1,2,3}->sum()";
        expect_eval "6.5" "Sequence{1,2,3.5}->sum()";
        expect_eval "0" "Sequence{}->sum()";
        expect_eval "3" "Set{1,3,2}->max()";
        expect_eval "1" "Set{1,3,2}->min()";
        expect_eval "OclUndefined" "Set{}->max()");
    Alcotest.test_case "first/last/at/indexOf" `Quick (fun () ->
        expect_eval "1" "Sequence{1,2,3}->first()";
        expect_eval "3" "Sequence{1,2,3}->last()";
        expect_eval "2" "Sequence{1,2,3}->at(2)";
        expect_eval "OclUndefined" "Sequence{1}->at(0)";
        expect_eval "OclUndefined" "Sequence{1}->at(5)";
        expect_eval "2" "Sequence{7,8,9}->indexOf(8)";
        expect_eval "OclUndefined" "Sequence{7}->indexOf(9)");
    Alcotest.test_case "conversions" `Quick (fun () ->
        expect_eval "2" "Sequence{1,1,2}->asSet()->size()";
        expect_eval "3" "Set{1,2,3}->asSequence()->size()";
        expect_eval "3" "Sequence{2,1,2}->asBag()->size()");
    Alcotest.test_case "union/intersection" `Quick (fun () ->
        expect_eval "3" "Set{1,2}->union(Set{2,3})->size()";
        expect_eval "4" "Sequence{1,2}->union(Sequence{2,3})->size()";
        expect_eval "Set{2}" "Set{1,2}->intersection(Set{2,3})");
    Alcotest.test_case "including/excluding/append/prepend/reverse" `Quick
      (fun () ->
        expect_eval "Set{1, 2}" "Set{1}->including(2)";
        expect_eval "Set{1}" "Set{1}->including(1)";
        expect_eval "Set{1}" "Set{1, 2}->excluding(2)";
        expect_eval "Sequence{1, 2}" "Sequence{1}->append(2)";
        expect_eval "Sequence{0, 1}" "Sequence{1}->prepend(0)";
        expect_eval "Sequence{2, 1}" "Sequence{1, 2}->reverse()");
    Alcotest.test_case "flatten one level" `Quick (fun () ->
        expect_eval "4" "Sequence{Sequence{1,2}, Sequence{3,4}}->flatten()->size()");
    Alcotest.test_case "undefined receiver propagates" `Quick (fun () ->
        expect_eval "OclUndefined" "(3/0)->size()");
    Alcotest.test_case "scalar receiver is an error" `Quick (fun () ->
        expect_error "3->size()");
    Alcotest.test_case "unknown collection op is an error" `Quick (fun () ->
        expect_error "Set{1}->frobnicate()");
  ]

let iterator_tests =
  [
    Alcotest.test_case "forAll / exists" `Quick (fun () ->
        expect_eval "true" "Sequence{1,2,3}->forAll(x | x > 0)";
        expect_eval "false" "Sequence{1,2,3}->forAll(x | x > 1)";
        expect_eval "true" "Sequence{1,2,3}->exists(x | x = 2)";
        expect_eval "false" "Sequence{1,2,3}->exists(x | x > 5)";
        expect_eval "true" "Set{}->forAll(x | false)";
        expect_eval "false" "Set{}->exists(x | true)");
    Alcotest.test_case "forAll with two variables is a product" `Quick (fun () ->
        expect_eval "true" "Set{1,2}->forAll(x, y | x + y < 5)";
        expect_eval "false" "Set{1,2}->forAll(x, y | x <> y)");
    Alcotest.test_case "three-valued forAll" `Quick (fun () ->
        expect_eval "OclUndefined" "Sequence{0,1}->forAll(x | 1 / x > 0)";
        expect_eval "false" "Sequence{0,-1}->forAll(x | 1 / x > 0)");
    Alcotest.test_case "select / reject" `Quick (fun () ->
        expect_eval "Set{2, 3}" "Set{1,2,3}->select(x | x > 1)";
        expect_eval "Set{1}" "Set{1,2,3}->reject(x | x > 1)";
        expect_eval "Sequence{2}" "Sequence{1,2}->select(x | x = 2)");
    Alcotest.test_case "collect flattens and keeps order on sequences" `Quick
      (fun () ->
        expect_eval "Sequence{2, 4, 6}" "Sequence{1,2,3}->collect(x | x * 2)";
        expect_eval "4"
          "Sequence{Sequence{1,2},Sequence{3,4}}->collect(s | s)->size()");
    Alcotest.test_case "one / any / isUnique" `Quick (fun () ->
        expect_eval "true" "Sequence{1,2,3}->one(x | x = 2)";
        expect_eval "false" "Sequence{1,2,2}->one(x | x = 2)";
        expect_eval "2" "Sequence{1,2,3}->any(x | x > 1)";
        expect_eval "OclUndefined" "Sequence{1}->any(x | x > 5)";
        expect_eval "true" "Sequence{1,2,3}->isUnique(x | x)";
        expect_eval "false" "Sequence{1,2,1}->isUnique(x | x)");
    Alcotest.test_case "sortedBy" `Quick (fun () ->
        expect_eval "Sequence{3, 2, 1}" "Sequence{1,3,2}->sortedBy(x | -x)";
        expect_eval "Sequence{1, 2, 3}" "Set{3,1,2}->sortedBy(x | x)");
    Alcotest.test_case "iterate" `Quick (fun () ->
        expect_eval "6" "Sequence{1,2,3}->iterate(x; acc = 0 | acc + x)";
        expect_eval "'cba'"
          "Sequence{'a','b','c'}->iterate(s; acc = '' | s.concat(acc))");
    Alcotest.test_case "closure" `Quick (fun () ->
        expect_eval "Set{1, 2, 3, 4}"
          "Set{1}->closure(x | if x < 4 then Set{x + 1} else Set{} endif)");
    Alcotest.test_case "closure agrees with allSupers on the model" `Quick
      (fun () ->
        let m = Fixtures.banking () in
        let same =
          Ocl.Eval.eval_string m Ocl.Env.empty
            "Class.allInstances()->forAll(c | c.supers->closure(s | s.supers) \
             = c.allSupers)"
        in
        check cb "equivalent" true (same = Ocl.Value.V_bool true));
    Alcotest.test_case "edge cases on empty collections" `Quick (fun () ->
        expect_eval "true" "Set{}->includesAll(Set{})";
        expect_eval "0" "Set{}->count(1)";
        expect_eval "false" "Set{}->one(x | true)";
        expect_eval "true" "Set{}->isUnique(x | x)";
        expect_eval "Sequence{}" "Set{}->sortedBy(x | x)";
        expect_eval "OclUndefined" "Sequence{}->first()");
    Alcotest.test_case "sortedBy is stable" `Quick (fun () ->
        (* equal keys keep receiver order *)
        expect_eval "Sequence{'bb', 'aa', 'c'}"
          "Sequence{'bb','aa','c'}->sortedBy(s | if s.size() = 2 then 0 else 1 endif)");
    Alcotest.test_case "multiple variables rejected for select" `Quick (fun () ->
        expect_error "Set{1}->select(x, y | x = y)");
    Alcotest.test_case "unknown iterator is an error" `Quick (fun () ->
        expect_error "Set{1}->frobAll(x | x)");
  ]

(* ---- evaluator: model navigation --------------------------------------- *)

let model_tests =
  let m = Fixtures.banking () in
  let with_stereos =
    let acct = Fixtures.class_id m "Account" in
    Mof.Builder.set_tag (Mof.Builder.add_stereotype m acct "entity") acct "color" "red"
  in
  [
    Alcotest.test_case "allInstances and size" `Quick (fun () ->
        expect_eval ~m "4" "Class.allInstances()->size()";
        expect_eval ~m "1" "Association.allInstances()->size()";
        expect_eval ~m "2" "Package.allInstances()->size()");
    Alcotest.test_case "Element.allInstances covers everything" `Quick (fun () ->
        expect_eval ~m (string_of_int (Mof.Model.size m))
          "Element.allInstances()->size()");
    Alcotest.test_case "name and qualifiedName" `Quick (fun () ->
        expect_eval ~m "true"
          "Class.allInstances()->exists(c | c.qualifiedName = 'bank.Account')");
    Alcotest.test_case "implicit collect over classes" `Quick (fun () ->
        (* balance + number on Account, name on Customer *)
        expect_eval ~m "3" "Class.allInstances().attributes->size()");
    Alcotest.test_case "operations, parameters, result types" `Quick (fun () ->
        expect_eval ~m "true"
          "Operation.allInstances()->exists(o | o.name = 'withdraw' and \
           o.resultType = 'Boolean')";
        expect_eval ~m "true"
          "Operation.allInstances()->select(o | o.name = \
           'transfer')->forAll(o | o.parameters->size() = 3)");
    Alcotest.test_case "operation.class backlink" `Quick (fun () ->
        expect_eval ~m "true"
          "Operation.allInstances()->forAll(o | o.class.oclIsKindOf(Class))");
    Alcotest.test_case "supers and allSupers" `Quick (fun () ->
        expect_eval ~m "true"
          "Class.allInstances()->exists(c | c.name = 'SavingsAccount' and \
           c.allSupers->exists(s | s.name = 'Account'))");
    Alcotest.test_case "attribute meta-properties" `Quick (fun () ->
        expect_eval ~m "true"
          "Attribute.allInstances()->select(a | a.name = 'balance')->forAll(a \
           | a.type = 'Real' and a.visibility = 'private' and a.lower = 1 and \
           a.upper = 1 and not a.isDerived)");
    Alcotest.test_case "association ends" `Quick (fun () ->
        expect_eval ~m "Sequence{'owner', 'accounts'}"
          "Association.allInstances()->any(a | true).endNames");
    Alcotest.test_case "generalization child/parent" `Quick (fun () ->
        expect_eval ~m "true"
          "Generalization.allInstances()->forAll(g | g.child.name = \
           'SavingsAccount' and g.parent.name = 'Account')");
    Alcotest.test_case "constraint body/language/constrained" `Quick (fun () ->
        expect_eval ~m "true"
          "Constraint.allInstances()->forAll(k | k.language = 'OCL' and \
           k.constrained->size() = 1 and k.body.size() > 0)");
    Alcotest.test_case "enumeration literals" `Quick (fun () ->
        let m2, _ =
          Mof.Builder.add_enumeration m ~owner:(Mof.Model.root m)
            ~name:"Currency" ~literals:[ "CHF"; "EUR" ]
        in
        expect_eval ~m:m2 "Sequence{'CHF', 'EUR'}"
          "Enumeration.allInstances()->any(e | true).literals";
        expect_eval ~m:m2 "true"
          "Enumeration.allInstances()->forAll(e | e.literals->size() = 2)");
    Alcotest.test_case "owner and ownedElements" `Quick (fun () ->
        expect_eval ~m "true"
          "Class.allInstances()->forAll(c | c.owner.ownedElements->includes(c))");
    Alcotest.test_case "stereotypes and tags" `Quick (fun () ->
        expect_eval ~m:with_stereos "true"
          "Class.allInstances()->exists(c | c.hasStereotype('entity'))";
        expect_eval ~m:with_stereos "'red'"
          "Class.allInstances()->any(c | c.hasStereotype('entity')).tag('color')";
        expect_eval ~m:with_stereos "true"
          "Class.allInstances()->any(c | c.name = 'Account').hasTag('color')";
        expect_eval ~m:with_stereos "OclUndefined"
          "Class.allInstances()->any(c | c.name = 'Teller').tag('color')");
    Alcotest.test_case "oclIsKindOf / oclIsTypeOf / oclAsType" `Quick (fun () ->
        expect_eval ~m "true" "Class.allInstances()->forAll(c | c.oclIsKindOf(Class))";
        expect_eval ~m "true"
          "Class.allInstances()->forAll(c | c.oclIsKindOf(Element))";
        expect_eval ~m "false"
          "Class.allInstances()->exists(c | c.oclIsTypeOf(Element))";
        expect_eval "true" "1.oclIsKindOf(Integer)";
        expect_eval "true" "1.oclIsKindOf(Real)";
        expect_eval "false" "1.oclIsTypeOf(Real)";
        expect_eval "5" "5.oclAsType(Real).oclAsType(Integer)";
        expect_eval "OclUndefined" "'x'.oclAsType(Integer)");
    Alcotest.test_case "unknown property is an error" `Quick (fun () ->
        expect_error ~m "Class.allInstances()->forAll(c | c.nothing = 1)");
    Alcotest.test_case "unknown classifier in allInstances is an error" `Quick
      (fun () -> expect_error ~m "Widget.allInstances()");
    Alcotest.test_case "unknown variable is an error" `Quick (fun () ->
        expect_error "nope + 1");
    Alcotest.test_case "self unbound is an error" `Quick (fun () ->
        expect_error "self.name");
    Alcotest.test_case "env binds variables and self" `Quick (fun () ->
        let acct = Fixtures.class_id m "Account" in
        let env =
          Ocl.Env.with_self (Ocl.Value.V_elem acct)
            (Ocl.Env.bind "k" (Ocl.Value.V_int 10) Ocl.Env.empty)
        in
        check cs "self nav" "'Account'" (eval_s ~m ~env "self.name");
        check cs "var" "11" (eval_s ~m ~env "k + 1"));
  ]

(* ---- constraints ------------------------------------------------------- *)

let constraint_tests =
  let m = Fixtures.banking () in
  [
    Alcotest.test_case "contextual constraint holds per instance" `Quick
      (fun () ->
        let c =
          Ocl.Constraint_.make ~context:"Class" ~name:"named"
            "self.name.size() > 0"
        in
        check cb "holds" true (Ocl.Constraint_.holds m c));
    Alcotest.test_case "failing constraint reports violators" `Quick (fun () ->
        let c =
          Ocl.Constraint_.make ~context:"Class" ~name:"has-attrs"
            "self.attributes->notEmpty()"
        in
        match Ocl.Constraint_.check m c with
        | Ocl.Constraint_.Fails violators ->
            check cb "Teller among violators" true
              (List.mem "bank.Teller" violators)
        | o ->
            Alcotest.fail
              (Format.asprintf "unexpected %a" Ocl.Constraint_.pp_outcome o));
    Alcotest.test_case "context-free constraint" `Quick (fun () ->
        let c =
          Ocl.Constraint_.make ~name:"global" "Class.allInstances()->size() = 4"
        in
        check cb "holds" true (Ocl.Constraint_.holds m c));
    Alcotest.test_case "ill-formed body reported" `Quick (fun () ->
        let c = Ocl.Constraint_.make ~name:"broken" "1 +" in
        match Ocl.Constraint_.check m c with
        | Ocl.Constraint_.Ill_formed _ -> ()
        | _ -> Alcotest.fail "expected ill-formed");
    Alcotest.test_case "non-boolean body reported" `Quick (fun () ->
        let c = Ocl.Constraint_.make ~name:"intbody" "1 + 1" in
        match Ocl.Constraint_.check m c with
        | Ocl.Constraint_.Ill_formed _ -> ()
        | _ -> Alcotest.fail "expected ill-formed");
    Alcotest.test_case "unknown context metaclass reported" `Quick (fun () ->
        let c = Ocl.Constraint_.make ~context:"Widget" ~name:"w" "true" in
        match Ocl.Constraint_.check m c with
        | Ocl.Constraint_.Ill_formed _ -> ()
        | _ -> Alcotest.fail "expected ill-formed");
    Alcotest.test_case "holes listed in order without duplicates" `Quick
      (fun () ->
        let c = Ocl.Constraint_.make ~name:"holey" "$a$ and $b$ or $a$ and $c$" in
        check (Alcotest.list cs) "holes" [ "a"; "b"; "c" ] (Ocl.Constraint_.holes c));
    Alcotest.test_case "substitute fills holes" `Quick (fun () ->
        let c =
          Ocl.Constraint_.make ~name:"param"
            "Class.allInstances()->exists(c | c.name = $target$)"
        in
        let s = Ocl.Constraint_.substitute [ ("target", "'Account'") ] c in
        check ci "no holes left" 0 (List.length (Ocl.Constraint_.holes s));
        check cb "holds" true (Ocl.Constraint_.holds m s));
    Alcotest.test_case "unbound holes are left in place" `Quick (fun () ->
        let c = Ocl.Constraint_.make ~name:"left" "$a$ = $b$" in
        let s = Ocl.Constraint_.substitute [ ("a", "1") ] c in
        check (Alcotest.list cs) "b remains" [ "b" ] (Ocl.Constraint_.holes s));
    Alcotest.test_case "undefined body counts as not holding" `Quick (fun () ->
        let c = Ocl.Constraint_.make ~name:"undef" "(3 / 0) > 1" in
        check cb "fails" false (Ocl.Constraint_.holds m c));
  ]

(* ---- typechecker ------------------------------------------------------- *)

let tc_diags src =
  match Ocl.Typecheck.check_source src with
  | Ok (_, diags) -> List.length diags
  | Error _ -> -1

let tc_type ?self_type src =
  match Ocl.Typecheck.check_source ?self_type src with
  | Ok (t, _) -> Ocl.Typecheck.ty_to_string t
  | Error e -> "parse error: " ^ e

let typecheck_tests =
  [
    Alcotest.test_case "well-typed expressions have no diagnostics" `Quick
      (fun () ->
        List.iter
          (fun src -> check ci src 0 (tc_diags src))
          [
            "1 + 2 * 3";
            "'a'.concat('b').size() > 0";
            "Set{1,2}->forAll(x | x > 0)";
            "Class.allInstances()->collect(c | c.name)";
            "Class.allInstances()->forAll(c | c.attributes->forAll(a | a.lower >= 0))";
            "if 1 < 2 then 'a' else 'b' endif";
            "let x = 3 in x + 1";
            "Sequence{1,2}->iterate(x; acc = 0 | acc + x)";
          ]);
    Alcotest.test_case "inferred types" `Quick (fun () ->
        check cs "int" "Integer" (tc_type "1 + 2");
        check cs "real" "Real" (tc_type "1 / 2");
        check cs "bool" "Boolean" (tc_type "1 < 2");
        check cs "string" "String" (tc_type "'a'.concat('b')");
        check cs "set of class" "Set(Class)" (tc_type "Class.allInstances()");
        check cs "collect names" "Bag(String)"
          (tc_type "Class.allInstances()->collect(c | c.name)");
        check cs "select keeps type" "Set(Class)"
          (tc_type "Class.allInstances()->select(c | c.isAbstract)");
        check cs "self typed" "Sequence(Attribute)"
          (tc_type ~self_type:"Class" "self.attributes"));
    Alcotest.test_case "diagnostics for definite errors" `Quick (fun () ->
        List.iter
          (fun src -> check cb src true (tc_diags src > 0))
          [
            "nope + 1";
            "Class.allInstances()->forAll(c | c.nosuch = 1)";
            "1 and true";
            "'a' + 1";
            "Set{1}->select(x, y | x = y)";
            "Set{1}->frobAll(x | x)";
            "Set{1}->frobnicate()";
            "2.5 div 2";
            "if 1 then 2 else 3 endif";
            "Widget.allInstances()";
            "3.oclIsKindOf(Widget)";
          ]);
    Alcotest.test_case "conforms relation" `Quick (fun () ->
        check cb "int to real" true
          (Ocl.Typecheck.conforms Ocl.Typecheck.T_integer Ocl.Typecheck.T_real);
        check cb "real to int" false
          (Ocl.Typecheck.conforms Ocl.Typecheck.T_real Ocl.Typecheck.T_integer);
        check cb "any both ways" true
          (Ocl.Typecheck.conforms Ocl.Typecheck.T_any Ocl.Typecheck.T_boolean
          && Ocl.Typecheck.conforms Ocl.Typecheck.T_boolean Ocl.Typecheck.T_any);
        check cb "element widening" true
          (Ocl.Typecheck.conforms
             (Ocl.Typecheck.T_element (Some "Class"))
             (Ocl.Typecheck.T_element None)));
    Alcotest.test_case "well_typed wrapper" `Quick (fun () ->
        check cb "good" true (Ocl.Typecheck.well_typed "1 + 2 = 3");
        check cb "bad parse" false (Ocl.Typecheck.well_typed "1 +"));
  ]

(* ---- properties -------------------------------------------------------- *)

let property_tests =
  let int_list_gen = QCheck2.Gen.(list_size (int_bound 8) (int_range (-20) 20)) in
  let seq_src xs =
    "Sequence{"
    ^ String.concat ", "
        (List.map
           (fun n -> if n < 0 then "(" ^ string_of_int n ^ ")" else string_of_int n)
           xs)
    ^ "}"
  in
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck2.Test.make ~name:"value compare is antisymmetric" ~count:200
        QCheck2.Gen.(pair Gen.value_gen Gen.value_gen)
        (fun (a, b) ->
          let c1 = Ocl.Value.compare a b and c2 = Ocl.Value.compare b a in
          (c1 = 0 && c2 = 0) || c1 * c2 < 0);
      QCheck2.Test.make ~name:"set canonicalization is idempotent" ~count:200
        QCheck2.Gen.(list_size (int_bound 8) Gen.value_gen)
        (fun vs ->
          match Ocl.Value.set vs with
          | Ocl.Value.V_set xs ->
              Ocl.Value.equal (Ocl.Value.set xs) (Ocl.Value.V_set xs)
          | _ -> false);
      QCheck2.Test.make
        ~name:"allInstances over the kind index matches a full scan" ~count:50
        Gen.model_gen
        (fun m ->
          let scan name =
            Some
              (Ocl.Value.set
                 (List.filter_map
                    (fun (e : Mof.Element.t) ->
                      if Mof.Element.metaclass e = name then
                        Some (Ocl.Value.V_elem e.Mof.Element.id)
                      else None)
                    (Mof.Model.elements m)))
          in
          List.for_all
            (fun name -> Ocl.Meta.all_instances m name = scan name)
            Mof.Kind.all_names);
      QCheck2.Test.make ~name:"forAll agrees with List.for_all" ~count:100
        QCheck2.Gen.(pair int_list_gen (int_range (-20) 20))
        (fun (xs, k) ->
          let kk = if k < 0 then "(" ^ string_of_int k ^ ")" else string_of_int k in
          let src = Printf.sprintf "%s->forAll(x | x > %s)" (seq_src xs) kk in
          eval src = Ocl.Value.V_bool (List.for_all (fun x -> x > k) xs));
      QCheck2.Test.make ~name:"exists is the dual of forAll" ~count:100
        QCheck2.Gen.(pair int_list_gen (int_range (-20) 20))
        (fun (xs, k) ->
          let kk = if k < 0 then "(" ^ string_of_int k ^ ")" else string_of_int k in
          let ex = eval (Printf.sprintf "%s->exists(x | x > %s)" (seq_src xs) kk) in
          let fa =
            eval
              (Printf.sprintf "not %s->forAll(x | not (x > %s))" (seq_src xs) kk)
          in
          Ocl.Value.equal ex fa);
      QCheck2.Test.make ~name:"select + reject partition the receiver"
        ~count:100 int_list_gen (fun xs ->
          let sel =
            eval (Printf.sprintf "%s->select(x | x > 0)->size()" (seq_src xs))
          in
          let rej =
            eval (Printf.sprintf "%s->reject(x | x > 0)->size()" (seq_src xs))
          in
          match (sel, rej) with
          | Ocl.Value.V_int a, Ocl.Value.V_int b -> a + b = List.length xs
          | _ -> false);
      QCheck2.Test.make ~name:"sum agrees with fold" ~count:100 int_list_gen
        (fun xs ->
          eval (seq_src xs ^ "->sum()")
          = Ocl.Value.V_int (List.fold_left ( + ) 0 xs));
      QCheck2.Test.make ~name:"sortedBy yields a sorted permutation" ~count:100
        int_list_gen (fun xs ->
          match eval (seq_src xs ^ "->sortedBy(x | x)") with
          | Ocl.Value.V_seq vs ->
              let ints =
                List.filter_map
                  (function Ocl.Value.V_int n -> Some n | _ -> None)
                  vs
              in
              ints = List.sort compare xs
          | _ -> false);
      QCheck2.Test.make ~name:"evaluation is deterministic" ~count:50
        int_list_gen (fun xs ->
          let src = seq_src xs ^ "->asSet()->size()" in
          Ocl.Value.equal (eval src) (eval src));
    ]

(* ---- query planner ------------------------------------------------------ *)

let plan_count src =
  match Ocl.Parser.parse_opt src with
  | Ok ast -> snd (Ocl.Plan.optimize_count ast)
  | Error e -> Alcotest.failf "parse failed: %s" e

let ab_model () =
  let m = Mof.Model.create ~name:"planned" in
  let root = Mof.Model.root m in
  let m, _ = Mof.Builder.add_class m ~owner:root ~name:"A" in
  let m, _ = Mof.Builder.add_class m ~owner:root ~name:"B" in
  let m, _ = Mof.Builder.add_interface m ~owner:root ~name:"A" in
  m

(* The planner is only allowed to change how an answer is computed, never
   the answer (nor the raised error): every body is checked through the
   planned+cached path and the naive re-parse-and-fold path and the
   outcomes must be structurally identical. *)
let agree_with_naive m body =
  let c = Ocl.Constraint_.make ~name:"t" body in
  check cb body true
    (Ocl.Constraint_.check m c = Ocl.Constraint_.check_naive m c)

let planner_tests =
  [
    Alcotest.test_case "optimize_count finds the planned shapes" `Quick
      (fun () ->
        check ci "exists" 1
          (plan_count "Class.allInstances()->exists(x | x.name = 'A')");
        check ci "flipped" 1
          (plan_count "Class.allInstances()->exists(x | 'A' = x.name)");
        check ci "select" 1
          (plan_count
             "Class.allInstances()->select(x | x.name = 'A')->size() >= 1");
        check ci "guarded forAll" 1
          (plan_count
             "Class.allInstances()->forAll(x | Set{'A', 'B'}->includes(x.name) \
              implies x.name.size() >= 0)");
        check ci "probe under an outer iterator" 1
          (plan_count
             "Sequence{'A', 'B'}->forAll(n | \
              Class.allInstances()->exists(c | c.name = n))"));
    Alcotest.test_case "optimize_count refuses the unplannable shapes" `Quick
      (fun () ->
        check ci "iterator on both sides" 0
          (plan_count "Class.allInstances()->exists(x | x.name = x.name)");
        check ci "unknown classifier" 0
          (plan_count "Widget.allInstances()->exists(x | x.name = 'A')");
        check ci "guard mentions the iterator" 0
          (plan_count
             "Class.allInstances()->forAll(x | \
              Set{x.name, 'A'}->includes(x.name) implies x.name = 'A')");
        check ci "non-string guard literal" 0
          (plan_count
             "Class.allInstances()->forAll(x | Set{1, 2}->includes(x.name) \
              implies x.name = 'A')");
        check ci "forAll without a guard" 0
          (plan_count "Class.allInstances()->forAll(x | x.name.size() >= 0)"));
    Alcotest.test_case "planning is idempotent" `Quick (fun () ->
        match
          Ocl.Parser.parse_opt
            "Class.allInstances()->exists(x | x.name = 'A')"
        with
        | Error e -> Alcotest.failf "parse failed: %s" e
        | Ok ast ->
            let planned = Ocl.Plan.optimize ast in
            let replanned, n = Ocl.Plan.optimize_count planned in
            check ci "no further rewrites" 0 n;
            check cb "unchanged" true (replanned = planned));
    Alcotest.test_case "plan IR renders as the surface syntax" `Quick
      (fun () ->
        List.iter
          (fun src ->
            match Ocl.Parser.parse_opt src with
            | Error e -> Alcotest.failf "parse failed: %s" e
            | Ok ast ->
                check cs src (Ocl.Ast.to_string ast)
                  (Ocl.Ast.to_string (Ocl.Plan.optimize ast)))
          [
            "Class.allInstances()->exists(x | x.name = 'A')";
            "Class.allInstances()->select(x | x.name = 'A')->size() >= 1";
            "Class.allInstances()->forAll(x | Set{'A'}->includes(x.name) \
             implies x.name = 'A')";
          ]);
    Alcotest.test_case "probes agree with the naive fold" `Quick (fun () ->
        let m = ab_model () in
        List.iter (agree_with_naive m)
          [
            "Class.allInstances()->exists(x | x.name = 'A')";
            "Class.allInstances()->exists(x | 'B' = x.name)";
            "Class.allInstances()->exists(x | x.name = 'Nope')";
            (* the Interface named 'A' must not leak into the Class probe *)
            "Class.allInstances()->select(x | x.name = 'A')->size() = 1";
            "Interface.allInstances()->select(x | x.name = 'A')->size() = 1";
            "Element.allInstances()->select(x | x.name = 'A')->size() = 2";
            "Class.allInstances()->forAll(x | Set{'A'}->includes(x.name) \
             implies x.name = 'A')";
            "Class.allInstances()->forAll(x | Set{'A', 'B'}->includes(x.name) \
             implies x.name.size() = 1)";
            "Class.allInstances()->forAll(x | Set{'Nope'}->includes(x.name) \
             implies x.name = 'never evaluated')";
          ]);
    Alcotest.test_case "probe fallbacks match the fold exactly" `Quick
      (fun () ->
        let m = ab_model () in
        List.iter (agree_with_naive m)
          [
            (* shadowed classifier: fall back to the fold, same error *)
            "let Class = Sequence{'A'} in \
             Class.allInstances()->exists(x | x.name = 'A')";
            (* non-string rhs: uniformly false, not an error *)
            "Class.allInstances()->exists(x | x.name = 3)";
            (* erroring rhs on a non-empty extent: same Ill_formed message *)
            "Class.allInstances()->exists(x | x.name = nope)";
            (* erroring rhs on an empty extent: the fold never evaluates the
               body, so neither may the probe *)
            "Enumeration.allInstances()->exists(x | x.name = nope)";
            (* erroring consequent behind a matching guard *)
            "Class.allInstances()->forAll(x | Set{'A'}->includes(x.name) \
             implies x.nope)";
          ]);
    Alcotest.test_case "no_planner forces the fold at evaluation time" `Quick
      (fun () ->
        let m = ab_model () in
        let c =
          Ocl.Constraint_.make ~name:"t"
            "Class.allInstances()->exists(x | x.name = 'A')"
        in
        let planned = Ocl.Constraint_.check m c in
        let forced =
          Ocl.Eval.with_no_planner (fun () -> Ocl.Constraint_.check m c)
        in
        check cb "same outcome" true (planned = forced);
        check cb "flag is scoped" false (Ocl.Eval.no_planner ()));
  ]

(* ---- compile + extent caches -------------------------------------------- *)

let cache_tests =
  [
    Alcotest.test_case "extent cache tracks repository history moves" `Quick
      (fun () ->
        let m0 = Fixtures.synthetic 3 in
        let m1 =
          fst (Mof.Builder.add_class m0 ~owner:(Mof.Model.root m0) ~name:"Xtra")
        in
        let agree label m =
          let cached = Ocl.Meta.all_instances m "Class" in
          let cold =
            Ocl.Meta.with_extent_cache false (fun () ->
                Ocl.Meta.all_instances m "Class")
          in
          check cb label true (cached = cold);
          cached
        in
        (* the two states must actually differ, or the test proves nothing *)
        check cb "states differ" false (agree "m0" m0 = agree "m1" m1);
        let repo = Repository.Repo.init m0 in
        let repo = Repository.Repo.commit ~concern:"t" ~message:"x" m1 repo in
        let repo = Repository.Repo.tag "v1" repo in
        ignore (agree "head" (Repository.Repo.head_model repo));
        (match Repository.Repo.undo repo with
        | None -> Alcotest.fail "undo failed"
        | Some r0 -> (
            ignore (agree "after undo" (Repository.Repo.head_model r0));
            match Repository.Repo.redo r0 with
            | None -> Alcotest.fail "redo failed"
            | Some r1 ->
                ignore (agree "after redo" (Repository.Repo.head_model r1))));
        match Repository.Repo.checkout "v1" repo with
        | Error e ->
            Alcotest.fail (Repository.Repo.checkout_error_to_string e)
        | Ok r -> ignore (agree "after checkout" (Repository.Repo.head_model r)));
    Alcotest.test_case "two models share one compiled constraint" `Quick
      (fun () ->
        (* a body string no other test compiles, so the first check is the
           one and only parse *)
        let body =
          "Class.allInstances()->exists(x | x.name = 'xyzzy-cache-probe')"
        in
        let c = Ocl.Constraint_.make ~name:"shared" body in
        let m1 = Fixtures.synthetic 2 and m2 = Fixtures.synthetic 4 in
        Obs.Metric.reset ();
        Obs.Metric.enable ();
        Fun.protect
          ~finally:(fun () ->
            Obs.Metric.disable ();
            Obs.Metric.reset ())
          (fun () ->
            ignore (Ocl.Constraint_.check m1 c);
            ignore (Ocl.Constraint_.check m2 c);
            let total name =
              List.fold_left
                (fun acc (r : Obs.Metric.row) ->
                  if String.equal r.Obs.Metric.metric name then
                    acc +. r.Obs.Metric.value
                  else acc)
                0. (Obs.Metric.rows ())
            in
            check cb "exactly one parse" true (total "ocl.parse.miss" = 1.);
            check cb "second check hits" true (total "ocl.parse.hit" >= 1.)));
  ]

let watermark_property_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck2.Test.make
        ~name:"cached extents equal fresh extents after hostile edit scripts"
        ~count:30
        QCheck2.Gen.(int_range 0 100_000)
        (fun seed ->
          let rng = Check.Prng.make (Int64.of_int seed) in
          let base = Check.Gen.base_script rng in
          let edits = Check.Gen.edit_script rng ~base in
          let m0, slots =
            Check.Edit.apply_with_slots (Mof.Model.create ~name:"fuzz") base
          in
          let agree m =
            List.for_all
              (fun k ->
                Ocl.Meta.all_instances m k
                = Ocl.Meta.with_extent_cache false (fun () ->
                      Ocl.Meta.all_instances m k))
              [ "Class"; "Attribute"; "Constraint"; "Element" ]
          in
          (* warm the cache on the base state, then replay the edits one op
             at a time: after every intermediate model the cache must never
             serve a pre-edit extent *)
          agree m0
          && fst
               (List.fold_left
                  (fun (ok, m) op ->
                    let m' = Check.Edit.apply_from m ~slots [ op ] in
                    (ok && agree m', m'))
                  (true, m0) edits));
    ]

let () =
  Alcotest.run "ocl"
    [
      ("lexer", lexer_tests);
      ("parser", parser_tests);
      ("values", value_tests);
      ("arithmetic", arithmetic_tests);
      ("strings", string_tests);
      ("logic", logic_tests);
      ("collections", collection_tests);
      ("iterators", iterator_tests);
      ("model-navigation", model_tests);
      ("constraints", constraint_tests);
      ("typecheck", typecheck_tests);
      ("planner", planner_tests);
      ("caches", cache_tests);
      ("cache-properties", watermark_property_tests);
      ("properties", property_tests);
    ]
