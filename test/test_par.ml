(* lib/par — the domain pool's deterministic-merge contract and the batch
   front-end over Core.Pipeline: results in submission order regardless of
   completion order, per-item failures that never poison the batch,
   identical outcomes at every pool width, and exact merged metrics. *)

let check = Alcotest.check

(* ---- pool scheduling ------------------------------------------------- *)

let pool_tests =
  [
    Alcotest.test_case "results come back in submission order" `Quick
      (fun () ->
        (* later items sleep less, so under any real concurrency the
           completion order inverts the submission order *)
        Par.Pool.with_pool ~jobs:4 (fun p ->
            let out =
              Par.Pool.map p
                (fun i ->
                  Unix.sleepf (float_of_int (12 - i) *. 0.002);
                  i * i)
                (List.init 12 Fun.id)
            in
            check
              (Alcotest.list Alcotest.int)
              "squares in order"
              (List.init 12 (fun i -> i * i))
              out));
    Alcotest.test_case "empty input, singleton input" `Quick (fun () ->
        Par.Pool.with_pool ~jobs:3 (fun p ->
            check (Alcotest.list Alcotest.int) "empty" []
              (Par.Pool.map p (fun i -> i) []);
            check (Alcotest.list Alcotest.int) "singleton" [ 7 ]
              (Par.Pool.map p (fun i -> i) [ 7 ])));
    Alcotest.test_case "jobs are clamped to at least one" `Quick (fun () ->
        Par.Pool.with_pool ~jobs:0 (fun p ->
            check Alcotest.int "width" 1 (Par.Pool.jobs p);
            check
              (Alcotest.list Alcotest.int)
              "sequential path" [ 1; 2; 3 ]
              (Par.Pool.map p Fun.id [ 1; 2; 3 ])));
    Alcotest.test_case
      "one raising item surfaces after the rest completed, pool survives"
      `Quick (fun () ->
        Par.Pool.with_pool ~jobs:4 (fun p ->
            let ran = Atomic.make 0 in
            (try
               ignore
                 (Par.Pool.map p
                    (fun i ->
                      if i = 5 then failwith "poisoned item"
                      else Atomic.incr ran)
                    (List.init 12 Fun.id));
               Alcotest.fail "expected the poisoned item to raise"
             with Failure msg ->
               check Alcotest.string "the item's own exception" "poisoned item"
                 msg);
            (* every other item still ran: one failure never cancels the
               batch *)
            check Alcotest.int "other items all ran" 11 (Atomic.get ran);
            (* and the pool is still usable afterwards *)
            check
              (Alcotest.list Alcotest.int)
              "pool survives" [ 0; 2; 4 ]
              (Par.Pool.map p (fun i -> 2 * i) [ 0; 1; 2 ])));
    Alcotest.test_case "lowest failing index wins when several items raise"
      `Quick (fun () ->
        Par.Pool.with_pool ~jobs:4 (fun p ->
            try
              ignore
                (Par.Pool.map p
                   (fun i ->
                     if i mod 3 = 2 then failwith (Printf.sprintf "item %d" i))
                   (List.init 10 Fun.id));
              Alcotest.fail "expected a raise"
            with Failure msg ->
              check Alcotest.string "first in submission order" "item 2" msg));
    Alcotest.test_case "a pool can run many maps back to back" `Quick
      (fun () ->
        Par.Pool.with_pool ~jobs:3 (fun p ->
            for n = 1 to 10 do
              check
                (Alcotest.list Alcotest.int)
                (Printf.sprintf "round %d" n)
                (List.init n (fun i -> i + n))
                (Par.Pool.map p (fun i -> i + n) (List.init n Fun.id))
            done));
    Alcotest.test_case "map on a shut-down pool is refused" `Quick (fun () ->
        let p = Par.Pool.create ~jobs:2 () in
        Par.Pool.shutdown p;
        Alcotest.check_raises "refused"
          (Invalid_argument "Par.Pool.map: pool is shut down") (fun () ->
            ignore (Par.Pool.map p Fun.id [ 1; 2 ])));
  ]

(* ---- batch refinement ------------------------------------------------- *)

let steps =
  [
    Par.Batch.step ~concern:"transactions"
      ~params:
        [
          ( "transactional",
            Transform.Params.V_list [ Transform.Params.V_ident "C0" ] );
        ];
    Par.Batch.step ~concern:"logging"
      ~params:
        [ ("targets", Transform.Params.V_list [ Transform.Params.V_string "*" ]) ];
  ]

let same_outcome (a : Par.Batch.outcome) (b : Par.Batch.outcome) =
  match (a, b) with
  | Ok p, Ok q -> Mof.Model.equal (Core.Project.model p) (Core.Project.model q)
  | Error e, Error f ->
      Core.Pipeline.error_to_string e = Core.Pipeline.error_to_string f
  | _ -> false

let batch_tests =
  [
    Alcotest.test_case "identical outcomes at every pool width, twice over"
      `Quick (fun () ->
        let models = Par.Workload.models ~classes:5 7 in
        let baseline = Par.Batch.refine_all ~steps models in
        check Alcotest.int "baseline all ok" 7
          (List.length (List.filter Result.is_ok baseline));
        List.iter
          (fun jobs ->
            Par.Pool.with_pool ~jobs (fun p ->
                let once = Par.Batch.refine_all ~pool:p ~steps models in
                let again = Par.Batch.refine_all ~pool:p ~steps models in
                check Alcotest.bool
                  (Printf.sprintf "jobs=%d matches sequential" jobs)
                  true
                  (List.for_all2 same_outcome baseline once);
                check Alcotest.bool
                  (Printf.sprintf "jobs=%d repeats itself" jobs)
                  true
                  (List.for_all2 same_outcome once again)))
          [ 1; 2; 4; 8 ])
    ;
    Alcotest.test_case "one poisoned item: exactly one Error, in its slot"
      `Quick (fun () ->
        (* the class-less model fails transactions' transactional-classes-
           exist precondition; everyone else refines *)
        let models =
          List.mapi
            (fun i m -> if i = 3 then Par.Workload.synthetic ~classes:0 "empty" else m)
            (Par.Workload.models ~classes:4 6)
        in
        Par.Pool.with_pool ~jobs:3 (fun p ->
            let out = Par.Batch.refine_all ~pool:p ~steps models in
            List.iteri
              (fun i outcome ->
                match (i, outcome) with
                | 3, Error (Core.Pipeline.Engine_failure _) -> ()
                | 3, Error e ->
                    Alcotest.failf "item 3: unexpected error %s"
                      (Core.Pipeline.error_to_string e)
                | 3, Ok _ -> Alcotest.fail "item 3 should have failed"
                | i, Error e ->
                    Alcotest.failf "item %d poisoned by its neighbour: %s" i
                      (Core.Pipeline.error_to_string e)
                | _, Ok _ -> ())
              out))
    ;
    Alcotest.test_case "pool reuse leaks no cache state across batches"
      `Quick (fun () ->
        (* same pool, two different batches: the second must match a fresh
           sequential run even though the workers' domain-local parse and
           extent caches are still warm from the first *)
        Par.Pool.with_pool ~jobs:3 (fun p ->
            let batch_a = Par.Workload.models ~classes:4 4 in
            let batch_b = Par.Workload.models ~classes:6 5 in
            ignore (Par.Batch.refine_all ~pool:p ~steps batch_a);
            let pooled = Par.Batch.refine_all ~pool:p ~steps batch_b in
            let fresh = Par.Batch.refine_all ~steps batch_b in
            check Alcotest.bool "second batch unaffected by the first" true
              (List.for_all2 same_outcome fresh pooled)))
    ;
    Alcotest.test_case "merged counters are exact across domains" `Quick
      (fun () ->
        Obs.Metric.enable ();
        ignore (Obs.Metric.drain ());
        let models = Par.Workload.models ~classes:3 6 in
        Par.Pool.with_pool ~jobs:3 (fun p ->
            ignore (Par.Batch.refine_all ~pool:p ~steps models));
        let shard = Obs.Metric.drain () in
        let total name =
          List.fold_left
            (fun acc ((n, _), cell) ->
              match (cell : Obs.Metric.cell) with
              | Obs.Metric.Counter { total; _ } when n = name -> acc +. total
              | _ -> acc)
            0. shard
        in
        let items = total "batch.items"
        and ok = total "batch.ok"
        and applies = total "engine.apply.ok" in
        Obs.Metric.disable ();
        (* 6 items, 2 steps each: counts must merge exactly no matter which
           domain ran which item *)
        check (Alcotest.float 0.0) "batch.items" 6. items;
        check (Alcotest.float 0.0) "batch.ok" 6. ok;
        check (Alcotest.float 0.0) "engine.apply.ok" 12. applies)
    ;
    Alcotest.test_case "merged histograms are exact across domains" `Quick
      (fun () ->
        (* observe a known value set from pool workers; the drained shard
           must hold the element-wise merge — same buckets, count, sum and
           extrema as observing the whole set on one domain *)
        let values = List.init 64 (fun i -> float_of_int ((i * 7919) + 1)) in
        Obs.Metric.enable ();
        ignore (Obs.Metric.drain ());
        Par.Pool.with_pool ~jobs:4 (fun p ->
            ignore
              (Par.Pool.map p
                 (fun v ->
                   Obs.observe ~unit_:"ns" "par.test.latency_ns" [] v)
                 values));
        let shard = Obs.Metric.drain () in
        Obs.Metric.disable ();
        let merged =
          List.find_map
            (fun ((n, _), cell) ->
              match (cell : Obs.Metric.cell) with
              | Obs.Metric.Histogram { hist; _ }
                when n = "par.test.latency_ns" ->
                  Some hist
              | _ -> None)
            shard
        in
        match merged with
        | None -> Alcotest.fail "histogram cell missing after drain"
        | Some h ->
            let whole = Obs.Hist.create () in
            List.iter (Obs.Hist.observe whole) values;
            check Alcotest.int "count" (Obs.Hist.count whole)
              (Obs.Hist.count h);
            check (Alcotest.float 1e-6) "sum" (Obs.Hist.sum whole)
              (Obs.Hist.sum h);
            check (Alcotest.float 0.0) "min" (Obs.Hist.min_value whole)
              (Obs.Hist.min_value h);
            check (Alcotest.float 0.0) "max" (Obs.Hist.max_value whole)
              (Obs.Hist.max_value h);
            check Alcotest.bool "buckets identical" true
              (Obs.Hist.buckets whole = Obs.Hist.buckets h))
    ;
    Alcotest.test_case "per-item traces equal the sequential ones" `Quick
      (fun () ->
        let models = Par.Workload.models ~classes:3 5 in
        let seq = Par.Batch.refine_all_traced ~steps models in
        Par.Pool.with_pool ~jobs:2 (fun p ->
            let par = Par.Batch.refine_all_traced ~pool:p ~steps models in
            List.iteri
              (fun i ((o_seq, ev_seq), (o_par, ev_par)) ->
                check Alcotest.bool
                  (Printf.sprintf "item %d outcome" i)
                  true
                  (same_outcome o_seq o_par);
                check Alcotest.bool
                  (Printf.sprintf "item %d has events" i)
                  true (ev_seq <> []);
                check Alcotest.bool
                  (Printf.sprintf "item %d normalized trace" i)
                  true
                  (List.map Obs.Event.normalize ev_seq
                  = List.map Obs.Event.normalize ev_par))
              (List.combine seq par)))
    ;
  ]

let () =
  Alcotest.run "par"
    [ ("pool", pool_tests); ("batch", batch_tests) ]
