(* Tests for the versioned model repository: commits, undo/redo, tags,
   branches, history rendering — plus the property suite locking the
   content-addressed rewrite against the naive full-copy baseline and the
   snapshot byte fixpoint. *)

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* A repository with three versions: initial banking, +One, +Two. *)
let three_versions () =
  let m0 = Fixtures.banking () in
  let repo = Repository.Repo.init m0 in
  let m1, _ = Mof.Builder.add_class m0 ~owner:(Mof.Model.root m0) ~name:"One" in
  let repo = Repository.Repo.commit ~concern:"a" ~message:"add One" m1 repo in
  let m2, _ = Mof.Builder.add_class m1 ~owner:(Mof.Model.root m1) ~name:"Two" in
  let repo = Repository.Repo.commit ~concern:"b" ~message:"add Two" m2 repo in
  (repo, m0, m1, m2)

let checkout_exn name repo =
  match Repository.Repo.checkout name repo with
  | Ok r -> r
  | Error e -> Alcotest.fail (Repository.Repo.checkout_error_to_string e)

let repo_tests =
  [
    Alcotest.test_case "init stores the root commit" `Quick (fun () ->
        let m = Fixtures.banking () in
        let repo = Repository.Repo.init m in
        check ci "one commit" 1 (Repository.Repo.size repo);
        check cb "head model" true (Mof.Model.equal m (Repository.Repo.head_model repo));
        check cb "no undo" false (Repository.Repo.can_undo repo));
    Alcotest.test_case "commits chain and log is head-first" `Quick (fun () ->
        let repo, _, _, m2 = three_versions () in
        check ci "three commits" 3 (Repository.Repo.size repo);
        check cb "head is m2" true (Mof.Model.equal m2 (Repository.Repo.head_model repo));
        let log = Repository.Repo.log repo in
        check (Alcotest.list cs) "messages head-first"
          [ "add Two"; "add One"; "initial model" ]
          (List.map (fun c -> c.Repository.Commit.message) log));
    Alcotest.test_case "diffs recorded against the parent" `Quick (fun () ->
        let repo, _, _, _ = three_versions () in
        let head = Repository.Repo.head repo in
        check ci "one class added" 1
          (Mof.Id.Set.cardinal head.Repository.Commit.diff.Mof.Diff.added));
    Alcotest.test_case "undo and redo move the head" `Quick (fun () ->
        let repo, m0, m1, m2 = three_versions () in
        let repo = Option.get (Repository.Repo.undo repo) in
        check cb "back to m1" true (Mof.Model.equal m1 (Repository.Repo.head_model repo));
        check cb "can redo" true (Repository.Repo.can_redo repo);
        let repo = Option.get (Repository.Repo.undo repo) in
        check cb "back to m0" true (Mof.Model.equal m0 (Repository.Repo.head_model repo));
        check cb "undo exhausted" true (Repository.Repo.undo repo = None);
        let repo = Option.get (Repository.Repo.redo repo) in
        let repo = Option.get (Repository.Repo.redo repo) in
        check cb "forward to m2" true (Mof.Model.equal m2 (Repository.Repo.head_model repo));
        check cb "redo exhausted" true (Repository.Repo.redo repo = None));
    Alcotest.test_case "commit clears the redo path" `Quick (fun () ->
        let repo, _, m1, _ = three_versions () in
        let repo = Option.get (Repository.Repo.undo repo) in
        let m1', _ = Mof.Builder.add_class m1 ~owner:(Mof.Model.root m1) ~name:"Branch" in
        let repo = Repository.Repo.commit ~message:"branch" m1' repo in
        check cb "no redo" false (Repository.Repo.can_redo repo);
        (* nothing is lost: all four commits remain stored *)
        check ci "four commits" 4 (Repository.Repo.size repo));
    Alcotest.test_case "tags name and recall versions" `Quick (fun () ->
        let repo, _, m1, m2 = three_versions () in
        let repo = Option.get (Repository.Repo.undo repo) in
        let repo = Repository.Repo.tag "stable" repo in
        let repo = Option.get (Repository.Repo.redo repo) in
        check cb "at head again" true (Mof.Model.equal m2 (Repository.Repo.head_model repo));
        let repo = checkout_exn "stable" repo in
        check cb "checked out" true (Mof.Model.equal m1 (Repository.Repo.head_model repo));
        check cb "tag_find" true (Repository.Repo.tag_find repo "stable" = Some 1);
        match Repository.Repo.checkout "nope" repo with
        | Error (Repository.Repo.Unknown_tag "nope") -> ()
        | Error e ->
            Alcotest.fail (Repository.Repo.checkout_error_to_string e)
        | Ok _ -> Alcotest.fail "checkout of unknown tag succeeded");
    Alcotest.test_case "re-tagging moves the tag" `Quick (fun () ->
        let repo, _, _, _ = three_versions () in
        let repo = Repository.Repo.tag "mark" repo in
        let repo = Option.get (Repository.Repo.undo repo) in
        let repo = Repository.Repo.tag "mark" repo in
        check ci "one binding" 1 (List.length (Repository.Repo.tags repo)));
    Alcotest.test_case "commit after checkout branches from the tag" `Quick
      (fun () ->
        let repo, _, m1, _ = three_versions () in
        let repo = Option.get (Repository.Repo.undo repo) in
        let repo = Repository.Repo.tag "base" repo in
        let repo = Option.get (Repository.Repo.redo repo) in
        let repo = checkout_exn "base" repo in
        let m1', _ = Mof.Builder.add_class m1 ~owner:(Mof.Model.root m1) ~name:"Side" in
        let repo = Repository.Repo.commit ~message:"side" m1' repo in
        let log = Repository.Repo.log repo in
        check (Alcotest.list cs) "side chain"
          [ "side"; "add One"; "initial model" ]
          (List.map (fun c -> c.Repository.Commit.message) log);
        (* the other branch's commits are still stored *)
        check ci "all commits kept" 4 (Repository.Repo.size repo));
    Alcotest.test_case "diff_between" `Quick (fun () ->
        let repo, _, _, _ = three_versions () in
        match Repository.Repo.diff_between repo ~from_id:0 ~to_id:2 with
        | Some d -> check ci "two added" 2 (Mof.Id.Set.cardinal d.Mof.Diff.added)
        | None -> Alcotest.fail "diff failed");
    Alcotest.test_case "diff_between unknown ids" `Quick (fun () ->
        let repo, _, _, _ = three_versions () in
        check cb "none" true (Repository.Repo.diff_between repo ~from_id:0 ~to_id:99 = None));
    Alcotest.test_case "diff_between across a fork agrees with the scan" `Quick
      (fun () ->
        (* head #2, then fork from #1: composed diff must walk through the
           lowest common ancestor, and removals must invert correctly *)
        let repo, _, m1, _ = three_versions () in
        let repo = Option.get (Repository.Repo.undo repo) in
        let m1', side = Mof.Builder.add_class m1 ~owner:(Mof.Model.root m1) ~name:"Side" in
        let repo = Repository.Repo.commit ~message:"side" m1' repo in
        let m1'' = Mof.Builder.delete_element m1' side in
        let repo = Repository.Repo.commit ~message:"drop side" m1'' repo in
        List.iter
          (fun (from_id, to_id) ->
            let composed =
              Option.get (Repository.Repo.diff_between repo ~from_id ~to_id)
            in
            let scanned =
              Option.get (Repository.Repo.diff_between_scan repo ~from_id ~to_id)
            in
            check cb
              (Printf.sprintf "diff %d->%d" from_id to_id)
              true
              (Mof.Id.Set.equal composed.Mof.Diff.added scanned.Mof.Diff.added
              && Mof.Id.Set.equal composed.Mof.Diff.removed
                   scanned.Mof.Diff.removed
              && Mof.Id.Set.equal composed.Mof.Diff.modified
                   scanned.Mof.Diff.modified))
          [ (2, 3); (3, 2); (0, 4); (2, 4); (4, 4) ]);
    Alcotest.test_case "model_at rematerializes any stored version" `Quick
      (fun () ->
        let repo, m0, m1, m2 = three_versions () in
        List.iteri
          (fun i m ->
            match Repository.Repo.model_at repo i with
            | Some m' ->
                check cb (Printf.sprintf "version %d" i) true
                  (Mof.Model.equal m m')
            | None -> Alcotest.fail "stored commit not found")
          [ m0; m1; m2 ];
        check cb "unknown id" true (Repository.Repo.model_at repo 99 = None));
    Alcotest.test_case "identical commits add no objects" `Quick (fun () ->
        let repo, _, _, m2 = three_versions () in
        let objects = Repository.Repo.store_objects repo in
        let bytes = Repository.Repo.store_bytes repo in
        let repo = Repository.Repo.commit ~message:"noop" m2 repo in
        let repo = Repository.Repo.commit ~message:"noop2" m2 repo in
        check ci "objects unchanged" objects (Repository.Repo.store_objects repo);
        check ci "bytes unchanged" bytes (Repository.Repo.store_bytes repo);
        check ci "commits recorded" 5 (Repository.Repo.size repo));
  ]

let branch_tests =
  [
    Alcotest.test_case "init starts on main" `Quick (fun () ->
        let repo = Repository.Repo.init (Fixtures.banking ()) in
        check cs "branch" "main" (Repository.Repo.branch repo);
        check cb "head" true (Repository.Repo.branch_head repo "main" = Some 0));
    Alcotest.test_case "branch pointer follows the head" `Quick (fun () ->
        let repo, _, _, _ = three_versions () in
        check cb "at #2" true (Repository.Repo.branch_head repo "main" = Some 2);
        let repo = Option.get (Repository.Repo.undo repo) in
        check cb "follows undo" true
          (Repository.Repo.branch_head repo "main" = Some 1));
    Alcotest.test_case "create, switch, and typed errors" `Quick (fun () ->
        let repo, _, _, m2 = three_versions () in
        let repo =
          match Repository.Repo.create_branch "feature" repo with
          | Ok r -> r
          | Error (`Branch_exists _) -> Alcotest.fail "fresh name rejected"
        in
        check cb "duplicate rejected" true
          (match Repository.Repo.create_branch "feature" repo with
          | Error (`Branch_exists "feature") -> true
          | _ -> false);
        let m3, _ =
          Mof.Builder.add_class m2 ~owner:(Mof.Model.root m2) ~name:"Feat"
        in
        let repo =
          match
            Repository.Repo.commit_on ~branch:"feature" ~message:"feat" m3 repo
          with
          | Ok r -> r
          | Error e ->
              Alcotest.fail (Repository.Repo.checkout_error_to_string e)
        in
        check cs "switched to feature" "feature" (Repository.Repo.branch repo);
        check cb "feature advanced" true
          (Repository.Repo.branch_head repo "feature" = Some 3);
        check cb "main untouched" true
          (Repository.Repo.branch_head repo "main" = Some 2);
        let repo =
          match Repository.Repo.switch_branch "main" repo with
          | Ok r -> r
          | Error e ->
              Alcotest.fail (Repository.Repo.checkout_error_to_string e)
        in
        check cb "back on main head" true
          (Mof.Model.equal m2 (Repository.Repo.head_model repo));
        check cb "unknown branch" true
          (match Repository.Repo.switch_branch "nope" repo with
          | Error (Repository.Repo.Unknown_branch "nope") -> true
          | _ -> false);
        check cb "commit_on unknown branch" true
          (match
             Repository.Repo.commit_on ~branch:"nope" ~message:"x" m3 repo
           with
          | Error (Repository.Repo.Unknown_branch "nope") -> true
          | _ -> false));
  ]

(* --- the property suite: CAS repo vs naive full-copy baseline ---------- *)

(* A random op script drives both implementations in lockstep. Ops are
   drawn as small ints; model mutations cycle through add / rename /
   delete so removed and modified ids show up in the trees too. *)
module Props = struct
  type op = Commit of int | Undo | Redo | Tag of int | Checkout of int

  let op_gen =
    let open QCheck2.Gen in
    oneof
      [
        map (fun k -> Commit k) (int_bound 2);
        return Undo;
        return Redo;
        map (fun k -> Tag k) (int_bound 2);
        map (fun k -> Checkout k) (int_bound 3);
      ]

  let script_gen = QCheck2.Gen.(list_size (int_range 1 25) op_gen)

  let tag_name k = Printf.sprintf "t%d" k

  (* One deterministic mutation of [m], distinct per step. *)
  let mutate m ~step ~kind =
    let classes = Mof.Model.by_kind m "Class" in
    match kind with
    | 1 when not (Mof.Id.Set.is_empty classes) ->
        let id = Mof.Id.Set.min_elt classes in
        Mof.Model.update m id (fun e ->
            { e with Mof.Element.name = Printf.sprintf "Renamed%d" step })
    | 2 when Mof.Id.Set.cardinal classes > 1 ->
        Mof.Builder.delete_element m (Mof.Id.Set.max_elt classes)
    | _ ->
        fst
          (Mof.Builder.add_class m ~owner:(Mof.Model.root m)
             ~name:(Printf.sprintf "Step%d" step))

  (* Run the script over both, checking the whole observable surface at
     every step; returns the final pair for further checks. *)
  let run_lockstep m0 script =
    let agree step cas naive =
      let fail fmt =
        Printf.ksprintf
          (fun msg -> QCheck2.Test.fail_reportf "step %d: %s" step msg)
          fmt
      in
      if
        not
          (Mof.Model.equal
             (Repository.Repo.head_model cas)
             (Repository.Naive.head_model naive))
      then fail "head models differ";
      if Repository.Repo.size cas <> Repository.Naive.size naive then
        fail "sizes differ";
      if Repository.Repo.can_undo cas <> Repository.Naive.can_undo naive then
        fail "can_undo differs";
      if Repository.Repo.can_redo cas <> Repository.Naive.can_redo naive then
        fail "can_redo differs";
      let sorted l = List.sort compare l in
      if
        Repository.Repo.tags cas <> sorted (Repository.Naive.tags naive)
      then fail "tags differ";
      let messages_cas =
        List.map
          (fun c -> c.Repository.Commit.message)
          (Repository.Repo.log cas)
      in
      let messages_naive =
        List.map
          (fun (c : Repository.Naive.commit) -> c.message)
          (Repository.Naive.log naive)
      in
      if messages_cas <> messages_naive then fail "log messages differ"
    in
    let step_pair i (cas, naive) op =
      match op with
      | Commit kind ->
          let m =
            mutate (Repository.Repo.head_model cas) ~step:i ~kind
          in
          let message = Printf.sprintf "c%d" i in
          ( Repository.Repo.commit ~message m cas,
            Repository.Naive.commit ~message m naive )
      | Undo -> (
          match (Repository.Repo.undo cas, Repository.Naive.undo naive) with
          | Some c, Some n -> (c, n)
          | None, None -> (cas, naive)
          | _ -> QCheck2.Test.fail_reportf "step %d: undo disagreement" i)
      | Redo -> (
          match (Repository.Repo.redo cas, Repository.Naive.redo naive) with
          | Some c, Some n -> (c, n)
          | None, None -> (cas, naive)
          | _ -> QCheck2.Test.fail_reportf "step %d: redo disagreement" i)
      | Tag k ->
          ( Repository.Repo.tag (tag_name k) cas,
            Repository.Naive.tag (tag_name k) naive )
      | Checkout k -> (
          let name = tag_name k in
          match
            (Repository.Repo.checkout name cas, Repository.Naive.checkout name naive)
          with
          | Ok c, Some n -> (c, n)
          | Error (Repository.Repo.Unknown_tag _), None -> (cas, naive)
          | _ -> QCheck2.Test.fail_reportf "step %d: checkout disagreement" i)
    in
    let _, final =
      List.fold_left
        (fun (i, pair) op ->
          let pair = step_pair i pair op in
          agree i (fst pair) (snd pair);
          (i + 1, pair))
        (0, (Repository.Repo.init m0, Repository.Naive.init m0))
        script
    in
    final

  let diff_eq (a : Mof.Diff.t) (b : Mof.Diff.t) =
    Mof.Id.Set.equal a.added b.added
    && Mof.Id.Set.equal a.removed b.removed
    && Mof.Id.Set.equal a.modified b.modified
end

let property_tests =
  let gen = QCheck2.Gen.pair Gen.model_gen Props.script_gen in
  let print (_, script) =
    String.concat ";"
      (List.map
         (function
           | Props.Commit k -> Printf.sprintf "commit%d" k
           | Props.Undo -> "undo"
           | Props.Redo -> "redo"
           | Props.Tag k -> Printf.sprintf "tag%d" k
           | Props.Checkout k -> Printf.sprintf "checkout%d" k)
         script)
  in
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck2.Test.make ~name:"random scripts agree with the naive baseline"
        ~count:60 ~print gen
        (fun (m0, script) ->
          let cas, naive = Props.run_lockstep m0 script in
          (* and the stored/composed diffs agree with the recomputed ones
             between every pair drawn from root and head *)
          let head = (Repository.Repo.head cas).Repository.Commit.id in
          List.for_all
            (fun (from_id, to_id) ->
              match
                ( Repository.Repo.diff_between cas ~from_id ~to_id,
                  Repository.Naive.diff_between naive ~from_id ~to_id )
              with
              | Some a, Some b -> Props.diff_eq a b
              | None, None -> true
              | _ -> false)
            [ (0, head); (head, 0); (0, 0) ]);
      QCheck2.Test.make ~name:"snapshot save/load/save is a byte fixpoint"
        ~count:40 ~print gen
        (fun (m0, script) ->
          let cas, _ = Props.run_lockstep m0 script in
          let s1 = Repository.Repo.save cas in
          match Repository.Repo.load s1 with
          | Error e -> QCheck2.Test.fail_reportf "load failed: %s" e
          | Ok r2 ->
              if not (String.equal (Repository.Repo.save r2) s1) then
                QCheck2.Test.fail_reportf "save after load differs";
              (* the reloaded value is observably the same repository *)
              Mof.Model.equal
                (Repository.Repo.head_model cas)
                (Repository.Repo.head_model r2)
              && Repository.Repo.tags cas = Repository.Repo.tags r2
              && Repository.Repo.branches cas = Repository.Repo.branches r2);
      QCheck2.Test.make
        ~name:"store objects are monotone and saturate on identical commits"
        ~count:30 ~print gen
        (fun (m0, script) ->
          let cas, _ = Props.run_lockstep m0 script in
          let before = Repository.Repo.store_objects cas in
          let m = Repository.Repo.head_model cas in
          let repeat =
            List.fold_left
              (fun r i ->
                let r' =
                  Repository.Repo.commit
                    ~message:(Printf.sprintf "same%d" i)
                    m r
                in
                if Repository.Repo.store_objects r' < Repository.Repo.store_objects r
                then QCheck2.Test.fail_reportf "store shrank";
                r')
              cas [ 1; 2; 3 ]
          in
          Repository.Repo.store_objects repeat = before);
      QCheck2.Test.make ~name:"load rejects corrupted snapshots" ~count:20
        ~print gen
        (fun (m0, script) ->
          let cas, _ = Props.run_lockstep m0 script in
          let s = Bytes.of_string (Repository.Repo.save cas) in
          (* flip one byte inside an object payload (right after the magic
             and the object count, i.e. in the first digest) *)
          let i = String.length "MDWREPO1" + 2 in
          if Bytes.length s <= i then true
          else begin
            Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor 0xff));
            match Repository.Repo.load (Bytes.to_string s) with
            | Error _ -> true
            | Ok _ -> false
          end);
    ]

(* --- the concurrent session front-end ---------------------------------- *)

let service_tests =
  [
    Alcotest.test_case "snapshot isolation across a commit" `Quick (fun () ->
        let repo, _, _, m2 = three_versions () in
        let svc = Repository.Service.create repo in
        let view = Repository.Service.snapshot svc in
        let m3, _ =
          Mof.Builder.add_class m2 ~owner:(Mof.Model.root m2) ~name:"Late"
        in
        (match Repository.Service.commit svc ~branch:"main" ~message:"late" m3 with
        | Ok id -> check ci "new id" 3 id
        | Error e -> Alcotest.fail (Repository.Service.error_to_string e));
        (* the old view is untouched; the service sees the new head *)
        check ci "view size" 3 (Repository.Repo.size view);
        check ci "service size" 4
          (Repository.Repo.size (Repository.Service.snapshot svc));
        check cb "view is stale" true (Repository.Service.stale svc view));
    Alcotest.test_case "expect_head detects a raced commit" `Quick (fun () ->
        let repo, _, _, m2 = three_versions () in
        let svc = Repository.Service.create repo in
        let expected =
          (Repository.Repo.head (Repository.Service.snapshot svc))
            .Repository.Commit.id
        in
        let m3, _ =
          Mof.Builder.add_class m2 ~owner:(Mof.Model.root m2) ~name:"A"
        in
        (match
           Repository.Service.commit svc ~branch:"main" ~expect_head:expected
             ~message:"first" m3
         with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Repository.Service.error_to_string e));
        (* same expectation again: the branch has moved on *)
        match
          Repository.Service.commit svc ~branch:"main" ~expect_head:expected
            ~message:"second" m3
        with
        | Error (Repository.Service.Stale_parent { expected = e; actual; _ }) ->
            check ci "expected" 2 e;
            check ci "actual" 3 actual
        | Error e -> Alcotest.fail (Repository.Service.error_to_string e)
        | Ok _ -> Alcotest.fail "stale commit accepted");
    Alcotest.test_case "typed errors for unknown branches" `Quick (fun () ->
        let repo, _, _, m2 = three_versions () in
        let svc = Repository.Service.create repo in
        match Repository.Service.commit svc ~branch:"nope" ~message:"x" m2 with
        | Error
            (Repository.Service.Repo_error (Repository.Repo.Unknown_branch "nope"))
          ->
            ()
        | Error e -> Alcotest.fail (Repository.Service.error_to_string e)
        | Ok _ -> Alcotest.fail "commit on unknown branch accepted");
    Alcotest.test_case "concurrent sessions serialize per branch" `Quick
      (fun () ->
        let m0 = Fixtures.banking () in
        let svc = Repository.Service.create (Repository.Repo.init m0) in
        let n_sessions = 3 and n_commits = 5 in
        (* branches are created before any session runs: create_branch
           points at the current head, which moves as sessions commit *)
        List.iter
          (fun s ->
            match
              Repository.Service.create_branch svc (Printf.sprintf "s%d" s)
            with
            | Ok _ -> ()
            | Error e -> Alcotest.fail (Repository.Service.error_to_string e))
          (List.init n_sessions Fun.id);
        let session s =
          let branch = Printf.sprintf "s%d" s in
          let rec go i =
                if i > n_commits then Ok ()
                else
                  let view = Repository.Service.snapshot svc in
                  let base =
                    Option.get
                      (Repository.Repo.model_at view
                         (Option.get (Repository.Repo.branch_head view branch)))
                  in
                  let m, _ =
                    Mof.Builder.add_class base ~owner:(Mof.Model.root base)
                      ~name:(Printf.sprintf "S%dC%d" s i)
                  in
                  match
                    Repository.Service.commit svc ~branch
                      ~message:(Printf.sprintf "s%d:%d" s i)
                      m
                  with
                  | Ok _ -> go (i + 1)
                  | Error e -> Error (Repository.Service.error_to_string e)
          in
          go 1
        in
        let domains =
          List.init n_sessions (fun s -> Domain.spawn (fun () -> session s))
        in
        List.iter
          (fun d ->
            match Domain.join d with
            | Ok () -> ()
            | Error msg -> Alcotest.fail msg)
          domains;
        let repo = Repository.Service.snapshot svc in
        check ci "all commits stored"
          (1 + (n_sessions * n_commits))
          (Repository.Repo.size repo);
        (* each branch holds its own chain, in order *)
        List.iter
          (fun s ->
            let branch = Printf.sprintf "s%d" s in
            let head = Option.get (Repository.Repo.branch_head repo branch) in
            let rec chain acc id =
              match Repository.Repo.find repo id with
              | None -> acc
              | Some c -> (
                  match c.Repository.Commit.parent with
                  | None -> c.Repository.Commit.message :: acc
                  | Some p -> chain (c.Repository.Commit.message :: acc) p)
            in
            let messages = chain [] head in
            check (Alcotest.list cs)
              (Printf.sprintf "branch %s" branch)
              ("initial model"
              :: List.init n_commits (fun i -> Printf.sprintf "s%d:%d" s (i + 1))
              )
              messages)
          (List.init n_sessions Fun.id));
  ]

let history_tests =
  [
    Alcotest.test_case "render marks the head and shows tags" `Quick (fun () ->
        let repo, _, _, _ = three_versions () in
        let repo = Repository.Repo.tag "v1" repo in
        let text = Repository.History.render repo in
        check cb "head marker" true (contains text "* #2 add Two");
        check cb "tag shown" true (contains text "<v1>");
        check cb "root listed" true (contains text "#0 initial model"));
    Alcotest.test_case "concerns_in_history oldest-first without duplicates"
      `Quick (fun () ->
        let repo, _, _, m2 = three_versions () in
        let m3, _ = Mof.Builder.add_class m2 ~owner:(Mof.Model.root m2) ~name:"Three" in
        let repo = Repository.Repo.commit ~concern:"a" ~message:"again" m3 repo in
        check (Alcotest.list cs) "order" [ "a"; "b" ]
          (Repository.History.concerns_in_history repo));
    Alcotest.test_case "total_churn sums the diffs" `Quick (fun () ->
        let repo, _, _, _ = three_versions () in
        (* each commit adds one class and modifies its owner package *)
        check ci "churn" 4 (Repository.History.total_churn repo));
  ]

let () =
  Alcotest.run "repository"
    [
      ("repo", repo_tests);
      ("branches", branch_tests);
      ("properties", property_tests);
      ("service", service_tests);
      ("history", history_tests);
    ]
