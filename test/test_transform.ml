(* Tests for the generic-transformation framework: parameters, traces,
   GMT/CMT specialization, and the checked engine. *)

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

open Transform

(* ---- params ------------------------------------------------------------ *)

let sample_decls =
  [
    Params.decl "names" (Params.P_list Params.P_ident) ~doc:"class names";
    Params.decl "mode"
      (Params.P_enum [ "fast"; "safe" ])
      ~default:(Params.V_string "safe");
    Params.decl "limit" Params.P_int ~required:false;
    Params.decl "verbose" Params.P_bool ~default:(Params.V_bool false);
  ]

let build_ok assignments =
  match Params.build sample_decls assignments with
  | Ok set -> set
  | Error problems ->
      Alcotest.fail
        (Format.asprintf "%a"
           (Format.pp_print_list Params.pp_problem)
           problems)

let params_tests =
  [
    Alcotest.test_case "defaults are filled in" `Quick (fun () ->
        let set = build_ok [ ("names", Params.V_list [ Params.V_ident "A" ]) ] in
        check cs "mode default" "safe" (Params.get_string set "mode");
        check cb "verbose default" false (Params.get_bool set "verbose");
        check cb "limit absent" true (Params.find set "limit" = None));
    Alcotest.test_case "missing required parameter reported" `Quick (fun () ->
        match Params.build sample_decls [] with
        | Error problems ->
            check cb "missing names" true
              (List.exists (fun p -> p = Params.Missing "names") problems)
        | Ok _ -> Alcotest.fail "expected failure");
    Alcotest.test_case "unknown parameter reported" `Quick (fun () ->
        match
          Params.build sample_decls
            [
              ("names", Params.V_list []);
              ("wat", Params.V_int 1);
            ]
        with
        | Error problems ->
            check cb "unknown" true
              (List.exists (fun p -> p = Params.Unknown "wat") problems)
        | Ok _ -> Alcotest.fail "expected failure");
    Alcotest.test_case "type mismatch reported" `Quick (fun () ->
        match Params.build sample_decls [ ("names", Params.V_int 3) ] with
        | Error problems ->
            check cb "mismatch" true
              (List.exists
                 (function Params.Type_mismatch ("names", _, _) -> true | _ -> false)
                 problems)
        | Ok _ -> Alcotest.fail "expected failure");
    Alcotest.test_case "enum accepts only its cases" `Quick (fun () ->
        check cb "fast ok" true
          (Params.build sample_decls
             [ ("names", Params.V_list []); ("mode", Params.V_string "fast") ]
          |> Result.is_ok);
        check cb "other rejected" true
          (Params.build sample_decls
             [ ("names", Params.V_list []); ("mode", Params.V_string "other") ]
          |> Result.is_error));
    Alcotest.test_case "ident and string interchange" `Quick (fun () ->
        check cb "string for ident" true
          (Params.value_conforms (Params.V_string "A") Params.P_ident);
        check cb "ident for string" true
          (Params.value_conforms (Params.V_ident "A") Params.P_string));
    Alcotest.test_case "get_names flattens" `Quick (fun () ->
        let set =
          build_ok
            [
              ( "names",
                Params.V_list [ Params.V_ident "A"; Params.V_string "B" ] );
            ]
        in
        check (Alcotest.list cs) "names" [ "A"; "B" ] (Params.get_names set "names"));
    Alcotest.test_case "getter type errors" `Quick (fun () ->
        let set = build_ok [ ("names", Params.V_list []) ] in
        check cb "get_int on bool" true
          (try
             ignore (Params.get_int set "verbose");
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "ocl literals" `Quick (fun () ->
        check cs "string" "'x'" (Params.to_ocl_literal (Params.V_string "x"));
        check cs "int" "3" (Params.to_ocl_literal (Params.V_int 3));
        check cs "bool" "true" (Params.to_ocl_literal (Params.V_bool true));
        check cs "list" "Set{'a', 'b'}"
          (Params.to_ocl_literal
             (Params.V_list [ Params.V_ident "a"; Params.V_ident "b" ])));
    Alcotest.test_case "substitution covers every assigned name" `Quick
      (fun () ->
        let set = build_ok [ ("names", Params.V_list [ Params.V_ident "A" ]) ] in
        let subst = Params.substitution set in
        List.iter
          (fun name -> check cb name true (List.mem_assoc name subst))
          (Params.names set));
    Alcotest.test_case "ptype rendering" `Quick (fun () ->
        check cs "enum" "enum(fast|safe)"
          (Params.ptype_to_string (Params.P_enum [ "fast"; "safe" ]));
        check cs "list" "list(ident)"
          (Params.ptype_to_string (Params.P_list Params.P_ident)));
  ]

(* ---- trace -------------------------------------------------------------- *)

let diff_with ~added ~modified =
  {
    Mof.Diff.added = Mof.Id.Set.of_list (List.map Mof.Id.of_int added);
    removed = Mof.Id.Set.empty;
    modified = Mof.Id.Set.of_list (List.map Mof.Id.of_int modified);
  }

let trace_tests =
  [
    Alcotest.test_case "sequence numbers increase" `Quick (fun () ->
        let t = Trace.empty in
        let t = Trace.record ~transformation:"T1" ~concern:"a" Mof.Diff.empty t in
        let t = Trace.record ~transformation:"T2" ~concern:"b" Mof.Diff.empty t in
        check (Alcotest.list ci) "seqs" [ 1; 2 ]
          (List.map (fun e -> e.Trace.seq) (Trace.entries t)));
    Alcotest.test_case "concern_space unions adds and mods" `Quick (fun () ->
        let t =
          Trace.record ~transformation:"T1" ~concern:"a"
            (diff_with ~added:[ 1; 2 ] ~modified:[ 3 ])
            Trace.empty
        in
        let t =
          Trace.record ~transformation:"T2" ~concern:"a"
            (diff_with ~added:[ 4 ] ~modified:[])
            t
        in
        check ci "four ids" 4 (Mof.Id.Set.cardinal (Trace.concern_space t ~concern:"a"));
        check ci "other empty" 0
          (Mof.Id.Set.cardinal (Trace.concern_space t ~concern:"b")));
    Alcotest.test_case "concerns_applied preserves first-seen order" `Quick
      (fun () ->
        let t = Trace.empty in
        let t = Trace.record ~transformation:"T1" ~concern:"b" Mof.Diff.empty t in
        let t = Trace.record ~transformation:"T2" ~concern:"a" Mof.Diff.empty t in
        let t = Trace.record ~transformation:"T3" ~concern:"b" Mof.Diff.empty t in
        check (Alcotest.list cs) "order" [ "b"; "a" ] (Trace.concerns_applied t));
    Alcotest.test_case "introduced_by is the creating concern" `Quick (fun () ->
        let t =
          Trace.record ~transformation:"T1" ~concern:"a"
            (diff_with ~added:[ 7 ] ~modified:[])
            Trace.empty
        in
        let t =
          Trace.record ~transformation:"T2" ~concern:"b"
            (diff_with ~added:[] ~modified:[ 7 ])
            t
        in
        check cb "creator wins" true
          (Trace.introduced_by t (Mof.Id.of_int 7) = Some "a");
        check cb "untraced" true (Trace.introduced_by t (Mof.Id.of_int 99) = None));
    Alcotest.test_case "drop_last" `Quick (fun () ->
        let t = Trace.record ~transformation:"T1" ~concern:"a" Mof.Diff.empty Trace.empty in
        check ci "emptied" 0 (Trace.length (Trace.drop_last t));
        check ci "empty stays empty" 0 (Trace.length (Trace.drop_last Trace.empty)));
  ]

(* ---- gmt / cmt ----------------------------------------------------------- *)

(* A small honest transformation: add a class per configured name. *)
let adder_gmt =
  Gmt.make ~name:"T.adder" ~concern:"testing"
    ~formals:[ Params.decl "names" (Params.P_list Params.P_ident) ]
    ~preconditions:
      [
        Ocl.Constraint_.make ~name:"fresh"
          "$names$->forAll(n | not Class.allInstances()->exists(c | c.name = n))";
      ]
    ~postconditions:
      [
        Ocl.Constraint_.make ~name:"present"
          "$names$->forAll(n | Class.allInstances()->exists(c | c.name = n))";
      ]
    (fun set m ->
      List.fold_left
        (fun m name ->
          fst (Mof.Builder.add_class m ~owner:(Mof.Model.root m) ~name))
        m (Params.get_names set "names"))

let adder names =
  Cmt.specialize_exn adder_gmt
    [ ("names", Params.V_list (List.map (fun n -> Params.V_ident n) names)) ]

(* A broken transformation: leaves a dangling reference behind. *)
let breaker_gmt =
  Gmt.make ~name:"T.breaker" ~concern:"testing" ~formals:[] (fun _set m ->
      let m, cls = Mof.Builder.add_class m ~owner:(Mof.Model.root m) ~name:"B" in
      let m, _ =
        Mof.Builder.add_attribute m ~cls ~name:"bad"
          ~typ:(Mof.Kind.Dt_ref (Mof.Id.of_int 9999))
      in
      m)

let failer_gmt =
  Gmt.make ~name:"T.failer" ~concern:"testing" ~formals:[] (fun _set _m ->
      Gmt.rewrite_error "nothing to do for %s" "failer")

let gmt_tests =
  [
    Alcotest.test_case "validate_conditions accepts the adder" `Quick (fun () ->
        check (Alcotest.list cs) "no diags" [] (Gmt.validate_conditions adder_gmt));
    Alcotest.test_case "validate_conditions flags undeclared holes" `Quick
      (fun () ->
        let bad =
          Gmt.make ~name:"T.bad" ~concern:"testing" ~formals:[]
            ~preconditions:[ Ocl.Constraint_.make ~name:"oops" "$nothere$ = 1" ]
            (fun _ m -> m)
        in
        check cb "diagnosed" true (Gmt.validate_conditions bad <> []));
    Alcotest.test_case "validate_conditions flags unparsable conditions" `Quick
      (fun () ->
        let bad =
          Gmt.make ~name:"T.bad" ~concern:"testing" ~formals:[]
            ~preconditions:[ Ocl.Constraint_.make ~name:"oops" "1 +" ]
            (fun _ m -> m)
        in
        check cb "diagnosed" true (Gmt.validate_conditions bad <> []));
    Alcotest.test_case "validate_conditions flags type errors" `Quick (fun () ->
        let bad =
          Gmt.make ~name:"T.bad" ~concern:"testing" ~formals:[]
            ~preconditions:
              [
                Ocl.Constraint_.make ~name:"oops"
                  "Class.allInstances()->forAll(c | c.nosuch = 1)";
              ]
            (fun _ m -> m)
        in
        check cb "diagnosed" true (Gmt.validate_conditions bad <> []));
    Alcotest.test_case "specialization validates parameters" `Quick (fun () ->
        check cb "missing rejected" true
          (Result.is_error (Cmt.specialize adder_gmt []));
        check cb "ok accepted" true
          (Result.is_ok
             (Cmt.specialize adder_gmt
                [ ("names", Params.V_list [ Params.V_ident "X" ]) ])));
    Alcotest.test_case "concrete name mirrors the paper's T<p> notation" `Quick
      (fun () ->
        check cs "name" "T.adder<[X, Y]>" (Cmt.name (adder [ "X"; "Y" ])));
    Alcotest.test_case "specialized conditions have no holes" `Quick (fun () ->
        let cmt = adder [ "X" ] in
        List.iter
          (fun c -> check ci "no holes" 0 (List.length (Ocl.Constraint_.holes c)))
          (Cmt.preconditions cmt @ Cmt.postconditions cmt));
  ]

(* ---- compose -------------------------------------------------------------- *)

(* a second small GMT sharing the "names" parameter with the adder: it
   stereotypes the classes the adder created *)
let marker_gmt =
  Gmt.make ~name:"T.marker" ~concern:"testing"
    ~formals:[ Params.decl "names" (Params.P_list Params.P_ident) ]
    ~preconditions:
      [
        Ocl.Constraint_.make ~name:"targets-exist"
          "$names$->forAll(n | Class.allInstances()->exists(c | c.name = n))";
      ]
    ~postconditions:
      [
        Ocl.Constraint_.make ~name:"marked"
          "Class.allInstances()->forAll(c | $names$->includes(c.name) implies \
           c.hasStereotype('marked'))";
      ]
    (fun set m ->
      List.fold_left
        (fun m name ->
          match Mof.Query.find_class m name with
          | Some cls -> Mof.Builder.add_stereotype m cls.Mof.Element.id "marked"
          | None -> Gmt.rewrite_error "class %s missing" name)
        m (Params.get_names set "names"))

let compose_tests =
  [
    Alcotest.test_case "sequential composition applies both members" `Quick
      (fun () ->
        let composite =
          match
            Compose.sequence ~name:"T.add-and-mark" ~concern:"testing"
              [ adder_gmt; marker_gmt ]
          with
          | Ok gmt -> gmt
          | Error e -> Alcotest.fail e
        in
        (* "names" is shared: one merged formal *)
        check ci "merged formals" 1 (List.length composite.Gmt.formals);
        let cmt =
          Cmt.specialize_exn composite
            [ ("names", Params.V_list [ Params.V_ident "Fresh" ]) ]
        in
        match Engine.apply cmt (Fixtures.banking ()) with
        | Ok outcome ->
            let m = outcome.Engine.model in
            check cb "class added" true (Mof.Query.find_class m "Fresh" <> None);
            check cb "and marked" true
              (match Mof.Query.find_class m "Fresh" with
              | Some c -> Mof.Element.has_stereotype "marked" c
              | None -> false)
        | Error f -> Alcotest.fail (Format.asprintf "%a" Engine.pp_failure f));
    Alcotest.test_case
      "intermediate condition violations abort as rewrite failures" `Quick
      (fun () ->
        (* marker first: its precondition needs the class the adder would
           only create later *)
        let composite =
          Result.get_ok
            (Compose.sequence ~name:"T.mark-then-add" ~concern:"testing"
               [ marker_gmt; adder_gmt ])
        in
        let cmt =
          Cmt.specialize_exn composite
            [ ("names", Params.V_list [ Params.V_ident "Fresh" ]) ]
        in
        match Engine.apply cmt (Fixtures.banking ()) with
        | Error (Engine.Precondition_failed _) ->
            (* the composite inherits marker's precondition, so the engine
               already refuses it — equally safe *)
            ()
        | Error (Engine.Rewrite_failed _) -> ()
        | Error f -> Alcotest.fail (Format.asprintf "%a" Engine.pp_failure f)
        | Ok _ -> Alcotest.fail "should not apply");
    Alcotest.test_case "conflicting formals are rejected" `Quick (fun () ->
        let conflicting =
          Gmt.make ~name:"T.conflict" ~concern:"testing"
            ~formals:[ Params.decl "names" Params.P_int ]
            (fun _ m -> m)
        in
        check cb "rejected" true
          (Result.is_error
             (Compose.sequence ~name:"T.bad" ~concern:"testing"
                [ adder_gmt; conflicting ])));
    Alcotest.test_case "empty composition is rejected" `Quick (fun () ->
        check cb "rejected" true
          (Result.is_error (Compose.sequence ~name:"T.none" ~concern:"t" [])));
    Alcotest.test_case "composite conditions: pre from first, post from last"
      `Quick (fun () ->
        let composite =
          Result.get_ok
            (Compose.sequence ~name:"T.c" ~concern:"testing"
               [ adder_gmt; marker_gmt ])
        in
        check ci "pre count" (List.length adder_gmt.Gmt.preconditions)
          (List.length composite.Gmt.preconditions);
        check ci "post count" (List.length marker_gmt.Gmt.postconditions)
          (List.length composite.Gmt.postconditions));
  ]

(* ---- engine -------------------------------------------------------------- *)

let engine_tests =
  [
    Alcotest.test_case "successful application" `Quick (fun () ->
        let m = Fixtures.banking () in
        match Engine.apply (adder [ "Fresh" ]) m with
        | Ok outcome ->
            check cb "class present" true
              (Mof.Query.find_class outcome.Engine.model "Fresh" <> None);
            check ci "one added" 1
              (Mof.Id.Set.cardinal outcome.Engine.diff.Mof.Diff.added);
            check cs "report concern" "testing" outcome.Engine.report.Report.concern
        | Error f ->
            Alcotest.fail (Format.asprintf "%a" Engine.pp_failure f));
    Alcotest.test_case "precondition failure leaves the model alone" `Quick
      (fun () ->
        let m = Fixtures.banking () in
        match Engine.apply (adder [ "Account" ]) m with
        | Error (Engine.Precondition_failed [ ("fresh", _) ]) -> ()
        | Error f -> Alcotest.fail (Format.asprintf "%a" Engine.pp_failure f)
        | Ok _ -> Alcotest.fail "should have failed");
    Alcotest.test_case "rewrite errors are reported" `Quick (fun () ->
        let cmt = Cmt.specialize_exn failer_gmt [] in
        match Engine.apply cmt (Fixtures.banking ()) with
        | Error (Engine.Rewrite_failed msg) ->
            check cb "message" true (String.length msg > 0)
        | _ -> Alcotest.fail "expected rewrite failure");
    Alcotest.test_case "well-formedness check catches broken rewrites" `Quick
      (fun () ->
        let cmt = Cmt.specialize_exn breaker_gmt [] in
        match Engine.apply cmt (Fixtures.banking ()) with
        | Error (Engine.Not_wellformed violations) ->
            check cb "violations" true (violations <> [])
        | _ -> Alcotest.fail "expected well-formedness failure");
    Alcotest.test_case "checks can be disabled" `Quick (fun () ->
        let cmt = Cmt.specialize_exn breaker_gmt [] in
        match Engine.apply ~checks:Engine.no_checks cmt (Fixtures.banking ()) with
        | Ok _ -> ()
        | Error f -> Alcotest.fail (Format.asprintf "%a" Engine.pp_failure f));
    Alcotest.test_case "postcondition failure reported" `Quick (fun () ->
        let lying =
          Gmt.make ~name:"T.lying" ~concern:"testing" ~formals:[]
            ~postconditions:
              [
                Ocl.Constraint_.make ~name:"impossible"
                  "Class.allInstances()->size() = 0";
              ]
            (fun _ m -> m)
        in
        match Engine.apply (Cmt.specialize_exn lying []) (Fixtures.banking ()) with
        | Error (Engine.Postcondition_failed [ ("impossible", _) ]) -> ()
        | _ -> Alcotest.fail "expected postcondition failure");
    Alcotest.test_case "sessions accumulate trace and reports" `Quick (fun () ->
        let session = Engine.start (Fixtures.banking ()) in
        let session =
          match Engine.step session (adder [ "One" ]) with
          | Ok s -> s
          | Error f -> Alcotest.fail (Format.asprintf "%a" Engine.pp_failure f)
        in
        let session =
          match Engine.step session (adder [ "Two" ]) with
          | Ok s -> s
          | Error f -> Alcotest.fail (Format.asprintf "%a" Engine.pp_failure f)
        in
        check ci "trace" 2 (Trace.length session.Engine.trace);
        check ci "applied" 2 (List.length session.Engine.applied);
        check ci "reports" 2 (List.length session.Engine.reports);
        check cb "initial preserved" true
          (Mof.Query.find_class session.Engine.initial "One" = None);
        check cb "current refined" true
          (Mof.Query.find_class session.Engine.current "Two" <> None));
    Alcotest.test_case "run stops at the first failure" `Quick (fun () ->
        match
          Engine.run (Fixtures.banking ())
            [ adder [ "One" ]; adder [ "One" ]; adder [ "Never" ] ]
        with
        | Error (name, Engine.Precondition_failed _) ->
            check cs "offender" "T.adder<[One]>" name
        | _ -> Alcotest.fail "expected failure on the duplicate");
    Alcotest.test_case "run on an empty sequence is the identity session"
      `Quick (fun () ->
        match Engine.run (Fixtures.banking ()) [] with
        | Ok session ->
            check ci "no trace" 0 (Trace.length session.Engine.trace);
            check cb "model untouched" true
              (Mof.Model.equal session.Engine.initial session.Engine.current)
        | Error _ -> Alcotest.fail "empty run must succeed");
    Alcotest.test_case "failed step leaves the session unchanged" `Quick
      (fun () ->
        let session = Engine.start (Fixtures.banking ()) in
        match Engine.step session (adder [ "Account" ]) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected failure");
    Alcotest.test_case "scoped and full well-formedness agree on Fig. 2" `Quick
      (fun () ->
        (* the paper's banking pipeline: every refinement step must pass the
           scoped (journal-driven) re-validation exactly when it passes the
           whole-model pass, and produce the same model *)
        let v_names names =
          Params.V_list (List.map (fun n -> Params.V_ident n) names)
        in
        let cmts =
          [
            Cmt.specialize_exn Concerns.Distribution.transformation
              [ ("remote", v_names [ "Account"; "Teller" ]) ];
            Cmt.specialize_exn Concerns.Transactions.transformation
              [ ("transactional", v_names [ "Account" ]) ];
            Cmt.specialize_exn Concerns.Security.transformation
              [ ("secured", v_names [ "Teller" ]) ];
          ]
        in
        let step m cmt =
          match
            ( Engine.apply cmt m,
              Engine.apply ~checks:Engine.full_checks cmt m )
          with
          | Ok scoped, Ok full ->
              check cb
                (Printf.sprintf "%s: same model" (Cmt.name cmt))
                true
                (Mof.Model.equal scoped.Engine.model full.Engine.model);
              scoped.Engine.model
          | Error f, _ | _, Error f ->
              Alcotest.fail (Format.asprintf "%a" Engine.pp_failure f)
        in
        ignore (List.fold_left step (Fixtures.banking ()) cmts));
    Alcotest.test_case "scoped and full passes report the same violations"
      `Quick (fun () ->
        let cmt = Cmt.specialize_exn breaker_gmt [] in
        match
          ( Engine.apply cmt (Fixtures.banking ()),
            Engine.apply ~checks:Engine.full_checks cmt (Fixtures.banking ()) )
        with
        | ( Error (Engine.Not_wellformed scoped),
            Error (Engine.Not_wellformed full) ) ->
            check cb "non-empty" true (scoped <> []);
            check cb "identical" true (scoped = full)
        | _, _ -> Alcotest.fail "expected well-formedness failures");
  ]

(* ---- report --------------------------------------------------------------- *)

let report_tests =
  [
    Alcotest.test_case "summary contains the concrete name and the counts"
      `Quick (fun () ->
        let m = Fixtures.banking () in
        match Engine.apply (adder [ "Fresh" ]) m with
        | Ok outcome ->
            let s = Report.summary outcome.Engine.report in
            check cb "name" true
              (String.length s > 0
              && String.sub s 0 7 = "T.adder");
            check cb "diff" true
              (String.length s >= 2
              && String.sub s (String.length s - 2) 2 = "~1")
        | Error _ -> Alcotest.fail "apply failed");
  ]

(* ---- properties ------------------------------------------------------------ *)

let property_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck2.Test.make ~name:"adder applies to any fresh-named model" ~count:30
        Gen.model_gen (fun m ->
          match Engine.apply (adder [ "Zz9" ]) m with
          | Ok outcome ->
              Mof.Wellformed.is_wellformed outcome.Engine.model
              && Mof.Query.find_class outcome.Engine.model "Zz9" <> None
          | Error _ -> false);
      QCheck2.Test.make ~name:"diff of an application never removes" ~count:30
        Gen.model_gen (fun m ->
          match Engine.apply (adder [ "Zz9" ]) m with
          | Ok outcome -> Mof.Id.Set.is_empty outcome.Engine.diff.Mof.Diff.removed
          | Error _ -> false);
    ]

let () =
  Alcotest.run "transform"
    [
      ("params", params_tests);
      ("trace", trace_tests);
      ("gmt-cmt", gmt_tests);
      ("compose", compose_tests);
      ("engine", engine_tests);
      ("report", report_tests);
      ("properties", property_tests);
    ]
