(* Tests for the bytecode execution layer: the shared Vm substrate
   (stack, pool, scopes, ablation flag), the Ocl.Compile failure cache,
   and determinism of VM compilation. The semantic guarantees of the
   compiled paths themselves (compiled ≡ tree-walked) are pinned by the
   [vm] oracle in the check harness; these tests cover the plumbing the
   oracle cannot see. *)

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

(* ---- substrate ----------------------------------------------------------- *)

let substrate_tests =
  [
    Alcotest.test_case "stack is LIFO and grows past its initial size" `Quick
      (fun () ->
        let s = Vm.Stack.create ~dummy:0 2 in
        for i = 1 to 100 do
          Vm.Stack.push s i
        done;
        check ci "depth" 100 (Vm.Stack.depth s);
        for i = 100 downto 1 do
          check ci "pop" i (Vm.Stack.pop s)
        done;
        check ci "empty" 0 (Vm.Stack.depth s);
        check cb "pop on empty raises" true
          (try
             ignore (Vm.Stack.pop s);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "pool dedups and preserves discovery order" `Quick
      (fun () ->
        let p = Vm.Pool.create () in
        check ci "first" 0 (Vm.Pool.intern p "a");
        check ci "second" 1 (Vm.Pool.intern p "b");
        check ci "dup" 0 (Vm.Pool.intern p "a");
        check (Alcotest.array cs) "order" [| "a"; "b" |] (Vm.Pool.to_array p));
    Alcotest.test_case "scope shadowing resolves innermost-first" `Quick
      (fun () ->
        let sc = Vm.Scope.create () in
        let outer = Vm.Scope.bind sc "x" in
        let inner = Vm.Scope.bind sc "x" in
        check cb "fresh slots" true (outer <> inner);
        check (Alcotest.option ci) "inner wins" (Some inner)
          (Vm.Scope.lookup sc "x");
        Vm.Scope.unbind sc 1;
        check (Alcotest.option ci) "outer restored" (Some outer)
          (Vm.Scope.lookup sc "x");
        check ci "nslots counts every binder" 2 (Vm.Scope.nslots sc));
    Alcotest.test_case "with_vm scopes the flag and survives exceptions" `Quick
      (fun () ->
        let initial = Vm.enabled () in
        Vm.with_vm false (fun () ->
            check cb "off inside" false (Vm.enabled ());
            Vm.with_vm true (fun () -> check cb "nested on" true (Vm.enabled ()));
            check cb "still off after nested" false (Vm.enabled ()));
        check cb "restored" initial (Vm.enabled ());
        (try Vm.with_vm false (fun () -> failwith "boom") with Failure _ -> ());
        check cb "restored after exception" initial (Vm.enabled ()));
  ]

(* ---- Ocl.Compile failure caching ------------------------------------------ *)

(* Distinctive source strings so these entries cannot have been populated
   by other tests sharing the domain-local cache. *)
let bad_src = "self.test_vm_poison ->"
let fixed_src = "self.test_vm_poison->isEmpty()"

let exn_of src = try Ok (Ocl.Compile.compile_exn src) with e -> Error e

let failure_cache_tests =
  [
    Alcotest.test_case "a cached parse failure re-raises the original exception"
      `Quick (fun () ->
        let first = exn_of bad_src in
        let second = exn_of bad_src in
        (match first with
        | Error (Ocl.Parser.Parse_error _) -> ()
        | Error e -> Alcotest.fail ("unexpected exception " ^ Printexc.to_string e)
        | Ok _ -> Alcotest.fail "ill-formed body compiled");
        check cb "cache hit raises the identical exception" true (first = second);
        (* the Result-returning face renders the same message both times *)
        match (Ocl.Compile.compile bad_src, Ocl.Compile.compile bad_src) with
        | Error m1, Error m2 -> check cs "same message" m1 m2
        | _ -> Alcotest.fail "expected Error from compile");
    Alcotest.test_case "a corrected body is not poisoned by the stale failure"
      `Quick (fun () ->
        (match exn_of bad_src with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "ill-formed body compiled");
        (match Ocl.Compile.compile fixed_src with
        | Ok c ->
            check cs "handle keeps its own source" fixed_src c.Ocl.Compile.src
        | Error m -> Alcotest.fail ("corrected body failed to compile: " ^ m));
        (* and the failure entry is still intact alongside the fix *)
        match exn_of bad_src with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "stale failure entry was dropped");
    Alcotest.test_case "uncached and cached compiles raise alike" `Quick
      (fun () ->
        let uncached = Ocl.Compile.with_cache false (fun () -> exn_of bad_src) in
        let cached = exn_of bad_src in
        check cb "same exception" true (uncached = cached));
  ]

(* ---- compilation determinism ---------------------------------------------- *)

(* Same AST, same bytecode — across separate compiles and across domains.
   The bytecode program is pure data (instruction arrays + value pool),
   so structural equality is the right notion of "same". *)

let det_srcs =
  [
    "1 + 2 * 3 = 7";
    "Sequence{1, 2, 3}->iterate(n; a : Integer = 0 | a + n) > 0";
    "Account.allInstances()->exists(a | a.name = 'x')";
    "self.name.size() >= 0 and not (1 > 2) or 1 = 1 xor false";
    "if Set{1}->includes(1) then - 1 else 2 endif < 3";
    "Class.allInstances()->select(c | c.oclIsKindOf(Element))->isEmpty()";
    "let x : Integer = 4 in x * x = 16";
    "Bag{1, 2, 2}->count(2) = 2 implies 'a'.toUpper() = 'A'";
  ]

let compile_planned src =
  match Ocl.Parser.parse src with
  | exception _ -> Alcotest.fail ("determinism source failed to parse: " ^ src)
  | ast ->
      let planned, _ = Ocl.Plan.optimize_count ast in
      (planned, Ocl.Bytecode.compile planned)

let determinism_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck2.Test.make ~name:"compilation is deterministic across domains"
        ~count:40
        (QCheck2.Gen.oneofl det_srcs)
        (fun src ->
          let planned, here = compile_planned src in
          let again = Ocl.Bytecode.compile planned in
          let elsewhere =
            Domain.join (Domain.spawn (fun () -> Ocl.Bytecode.compile planned))
          in
          here = again && here = elsewhere);
    ]

let () =
  Alcotest.run "vm"
    [
      ("substrate", substrate_tests);
      ("compile-cache", failure_cache_tests);
      ("determinism", determinism_tests);
    ]
