(* Tests for the static weaver: join points, matching, each advice kind's
   weaving semantics, inter-type members, and precedence. *)

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* A tiny program: class Service { void handle() { helper.run(); this.state = 1; }
   void other() {} } plus class Helper { void run() {} }. *)
let mk_program () =
  let handle_body =
    [
      Code.Jstmt.S_local
        (Code.Jtype.T_named "Helper", "helper", Some (Code.Jexpr.E_new ("Helper", [])));
      Code.Jstmt.S_expr (Code.Jexpr.E_call (Some (Code.Jexpr.E_name "helper"), "run", []));
      Code.Jstmt.S_expr
        (Code.Jexpr.E_assign
           (Code.Jexpr.E_field (Code.Jexpr.E_this, "state"), Code.Jexpr.E_int 1));
    ]
  in
  let mk_method name body =
    {
      Code.Jdecl.method_name = name;
      method_mods = [ Code.Jdecl.M_public ];
      return_type = Code.Jtype.T_void;
      params = [];
      throws = [];
      body = Some body;
    }
  in
  let service =
    {
      Code.Jdecl.class_name = "Service";
      class_mods = [ Code.Jdecl.M_public ];
      extends = None;
      implements = [];
      fields =
        [
          {
            Code.Jdecl.field_name = "state";
            field_type = Code.Jtype.T_int;
            field_mods = [ Code.Jdecl.M_private ];
            field_init = None;
          };
        ];
      methods = [ mk_method "handle" handle_body; mk_method "other" [] ];
    }
  in
  let helper =
    {
      Code.Jdecl.class_name = "Helper";
      class_mods = [ Code.Jdecl.M_public ];
      extends = None;
      implements = [];
      fields = [];
      methods = [ mk_method "run" [] ];
    }
  in
  [ Code.Junit.unit_ ~package:"app" [ Code.Jdecl.Class service; Code.Jdecl.Class helper ] ]

let body_of program cls name =
  match Code.Junit.find_class program cls with
  | Some c -> (
      match Code.Jdecl.find_method c name with
      | Some m -> Option.value ~default:[] m.Code.Jdecl.body
      | None -> Alcotest.fail ("method missing: " ^ name))
  | None -> Alcotest.fail ("class missing: " ^ cls)

let body_text program cls name =
  String.concat "\n" (List.map Code.Printer.stmt_to_string (body_of program cls name))

let marker text = Code.Jstmt.S_comment text

let aspect_with ?(name = "A") advices =
  Aspects.Aspect.make ~name ~concern:"test" ~advices ()

(* ---- join points ------------------------------------------------------- *)

let joinpoint_tests =
  [
    Alcotest.test_case "execution shadows enumerate bodied methods" `Quick
      (fun () ->
        let shadows = Weaver.Joinpoint.execution_shadows (mk_program ()) in
        check ci "three" 3 (List.length shadows));
    Alcotest.test_case "describe" `Quick (fun () ->
        check cs "execution" "execution(A.f)"
          (Weaver.Joinpoint.describe
             (Weaver.Joinpoint.Sh_execution { class_name = "A"; method_name = "f" })));
    Alcotest.test_case "enclosing_class" `Quick (fun () ->
        check cs "call" "W"
          (Weaver.Joinpoint.enclosing_class
             (Weaver.Joinpoint.Sh_call
                {
                  within_class = "W";
                  within_method = "m";
                  receiver_class = None;
                  method_name = "f";
                })));
  ]

(* ---- matcher ------------------------------------------------------------- *)

let matcher_tests =
  let exec = Weaver.Joinpoint.Sh_execution { class_name = "Service"; method_name = "handle" } in
  let call_known =
    Weaver.Joinpoint.Sh_call
      {
        within_class = "Service";
        within_method = "handle";
        receiver_class = Some "Helper";
        method_name = "run";
      }
  in
  let call_unknown =
    Weaver.Joinpoint.Sh_call
      {
        within_class = "Service";
        within_method = "handle";
        receiver_class = None;
        method_name = "run";
      }
  in
  let field_set =
    Weaver.Joinpoint.Sh_field_set
      {
        within_class = "Service";
        within_method = "handle";
        target_class = "Service";
        field_name = "state";
      }
  in
  let open Aspects.Pointcut in
  [
    Alcotest.test_case "kinded pointcuts only match their kind" `Quick (fun () ->
        check cb "exec/exec" true (Weaver.Matcher.matches (execution "Service" "*") exec);
        check cb "exec/call" false (Weaver.Matcher.matches (execution "*" "*") call_known);
        check cb "call/exec" false (Weaver.Matcher.matches (call "*" "*") exec);
        check cb "set/set" true (Weaver.Matcher.matches (set_field "Service" "state") field_set));
    Alcotest.test_case "call matching uses the receiver class" `Quick (fun () ->
        check cb "known receiver" true
          (Weaver.Matcher.matches (call "Helper" "run") call_known);
        check cb "wrong class" false
          (Weaver.Matcher.matches (call "Service" "run") call_known);
        (* unresolved receivers match optimistically: any class pattern
           could describe the runtime receiver, so only the method
           pattern filters *)
        check cb "unknown receiver vs named pattern" true
          (Weaver.Matcher.matches (call "Helper" "run") call_unknown);
        check cb "unknown receiver vs wildcard pattern" true
          (Weaver.Matcher.matches (call "Help*" "run") call_unknown);
        check cb "unknown receiver vs star" true
          (Weaver.Matcher.matches (call "*" "run") call_unknown);
        check cb "unknown receiver, method still filters" false
          (Weaver.Matcher.matches (call "Helper" "walk") call_unknown));
    Alcotest.test_case "within matches any shadow kind" `Quick (fun () ->
        check cb "exec" true (Weaver.Matcher.matches (within "Service") exec);
        check cb "call" true (Weaver.Matcher.matches (within "Service") call_known);
        check cb "mismatch" false (Weaver.Matcher.matches (within "Other") exec));
    Alcotest.test_case "boolean combinators" `Quick (fun () ->
        check cb "and" true
          (Weaver.Matcher.matches (execution "Service" "*" &&& within "Service") exec);
        check cb "or" true
          (Weaver.Matcher.matches (execution "Nope" "*" ||| within "Service") exec);
        check cb "not" false
          (Weaver.Matcher.matches (not_ (execution "Service" "*")) exec));
  ]

(* The matcher is a boolean algebra over shadows: De Morgan, double
   negation, and totality must hold for every pointcut x shadow pair, not
   just the handcrafted ones above. *)
let matcher_properties =
  let pair_gen = QCheck2.Gen.pair Gen.pointcut_gen Gen.shadow_gen in
  let triple_gen =
    QCheck2.Gen.triple Gen.pointcut_gen Gen.pointcut_gen Gen.shadow_gen
  in
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck2.Test.make ~name:"De Morgan: not (a and b) = not a or not b"
        ~count:500 triple_gen (fun (a, b, s) ->
          Weaver.Matcher.matches
            (Aspects.Pointcut.Not (Aspects.Pointcut.And (a, b)))
            s
          = Weaver.Matcher.matches
              (Aspects.Pointcut.Or
                 (Aspects.Pointcut.Not a, Aspects.Pointcut.Not b))
              s);
      QCheck2.Test.make ~name:"De Morgan: not (a or b) = not a and not b"
        ~count:500 triple_gen (fun (a, b, s) ->
          Weaver.Matcher.matches
            (Aspects.Pointcut.Not (Aspects.Pointcut.Or (a, b)))
            s
          = Weaver.Matcher.matches
              (Aspects.Pointcut.And
                 (Aspects.Pointcut.Not a, Aspects.Pointcut.Not b))
              s);
      QCheck2.Test.make ~name:"double negation is identity" ~count:500 pair_gen
        (fun (pc, s) ->
          Weaver.Matcher.matches
            (Aspects.Pointcut.Not (Aspects.Pointcut.Not pc))
            s
          = Weaver.Matcher.matches pc s);
      QCheck2.Test.make ~name:"matches and kinds are total" ~count:500 pair_gen
        (fun (pc, s) ->
          (* no pointcut x shadow pair may raise, and [kinds] must agree
             with itself under negation (the weaver's gate treats [Not p]
             exactly like [p]) *)
          let (_ : bool) = Weaver.Matcher.matches pc s in
          Weaver.Matcher.kinds (Aspects.Pointcut.Not pc)
          = Weaver.Matcher.kinds pc);
      QCheck2.Test.make ~name:"index candidates are a sound upper bound"
        ~count:300 Gen.pointcut_gen (fun pc ->
          (* probe-not-scan must never lose a match: resolving through the
             joinpoint index equals filtering every shadow directly *)
          let program = mk_program () in
          let index = Weaver.Index.build program in
          let via_index = Weaver.Index.matching index pc in
          let direct =
            List.filter
              (Weaver.Matcher.matches pc)
              (Weaver.Index.all_shadows index)
          in
          (* [matching] lists execution shadows before statement shadows
             per class, [all_shadows] interleaves per method — compare as
             multisets *)
          List.sort compare via_index = List.sort compare direct);
    ]

(* ---- weaving semantics ------------------------------------------------------ *)

let weave_tests =
  [
    Alcotest.test_case "before prepends to the body" `Quick (fun () ->
        let aspect =
          aspect_with
            [
              Aspects.Advice.make Aspects.Advice.Before
                (Aspects.Pointcut.execution "Service" "handle")
                [ marker "BEFORE" ];
            ]
        in
        let { Weaver.Weave.program; applications } =
          Weaver.Weave.weave_one aspect (mk_program ())
        in
        (match body_of program "Service" "handle" with
        | Code.Jstmt.S_comment "BEFORE" :: _ -> ()
        | _ -> Alcotest.fail "advice not first");
        check ci "one application" 1 (List.length applications);
        (* unmatched methods untouched *)
        check ci "other untouched" 0 (List.length (body_of program "Service" "other")));
    Alcotest.test_case "after weaves try/finally" `Quick (fun () ->
        let aspect =
          aspect_with
            [
              Aspects.Advice.make Aspects.Advice.After
                (Aspects.Pointcut.execution "Service" "handle")
                [ marker "AFTER" ];
            ]
        in
        let { Weaver.Weave.program; _ } = Weaver.Weave.weave_one aspect (mk_program ()) in
        let text = body_text program "Service" "handle" in
        check cb "finally" true (contains text "} finally {");
        check cb "marker inside" true (contains text "// AFTER"));
    Alcotest.test_case "after_returning inserts before a trailing return"
      `Quick (fun () ->
        let with_return =
          Code.Junit.update_class (mk_program ()) "Service"
            (Code.Jdecl.map_methods (fun m ->
                 if m.Code.Jdecl.method_name = "other" then
                   { m with Code.Jdecl.body = Some [ marker "WORK"; Code.Jstmt.S_return None ] }
                 else m))
        in
        let aspect =
          aspect_with
            [
              Aspects.Advice.make Aspects.Advice.After_returning
                (Aspects.Pointcut.execution "Service" "other")
                [ marker "EXIT" ];
            ]
        in
        let { Weaver.Weave.program; _ } = Weaver.Weave.weave_one aspect with_return in
        match body_of program "Service" "other" with
        | [ Code.Jstmt.S_comment "WORK"; Code.Jstmt.S_comment "EXIT"; Code.Jstmt.S_return None ] ->
            ()
        | body ->
            Alcotest.fail
              (String.concat " ; " (List.map Code.Printer.stmt_to_string body)));
    Alcotest.test_case "around splices the body at proceed()" `Quick (fun () ->
        let aspect =
          aspect_with
            [
              Aspects.Advice.make Aspects.Advice.Around
                (Aspects.Pointcut.execution "Service" "handle")
                [ marker "IN"; Aspects.Advice.proceed; marker "OUT" ];
            ]
        in
        let { Weaver.Weave.program; _ } = Weaver.Weave.weave_one aspect (mk_program ()) in
        match body_of program "Service" "handle" with
        | [ Code.Jstmt.S_comment "IN"; Code.Jstmt.S_block original; Code.Jstmt.S_comment "OUT" ] ->
            check ci "original inside" 3 (List.length original)
        | body ->
            Alcotest.fail
              (String.concat " ; " (List.map Code.Printer.stmt_to_string body)));
    Alcotest.test_case "pseudo-variables are substituted" `Quick (fun () ->
        let aspect =
          aspect_with
            [
              Aspects.Advice.make Aspects.Advice.Before
                (Aspects.Pointcut.execution "Service" "handle")
                [
                  Code.Jstmt.S_expr
                    (Code.Jexpr.E_call
                       ( Some (Code.Jexpr.E_name "Log"),
                         "log",
                         [ Code.Jexpr.E_name "thisJoinPoint"; Code.Jexpr.E_name "targetName" ] ));
                ];
            ]
        in
        let { Weaver.Weave.program; _ } = Weaver.Weave.weave_one aspect (mk_program ()) in
        let text = body_text program "Service" "handle" in
        check cb "joinpoint string" true
          (contains text "\"execution(Service.handle)\"");
        check cb "target string" true (contains text "\"Service\""));
    Alcotest.test_case "call advice wraps the containing statement" `Quick
      (fun () ->
        let aspect =
          aspect_with
            [
              Aspects.Advice.make Aspects.Advice.Before
                (Aspects.Pointcut.call "Helper" "run")
                [ marker "CALL" ];
            ]
        in
        let { Weaver.Weave.program; applications } =
          Weaver.Weave.weave_one aspect (mk_program ())
        in
        check ci "one application" 1 (List.length applications);
        check cs "shadow" "call(Helper.run)" (List.hd applications).Weaver.Weave.at;
        let text = body_text program "Service" "handle" in
        check cb "marker before the call" true (contains text "// CALL"));
    Alcotest.test_case "field-set advice fires on this.field assignment" `Quick
      (fun () ->
        let aspect =
          aspect_with
            [
              Aspects.Advice.make Aspects.Advice.After
                (Aspects.Pointcut.set_field "Service" "state")
                [ marker "SET" ];
            ]
        in
        let { Weaver.Weave.program; applications } =
          Weaver.Weave.weave_one aspect (mk_program ())
        in
        check ci "one application" 1 (List.length applications);
        let text = body_text program "Service" "handle" in
        check cb "marker after assignment" true (contains text "// SET"));
    Alcotest.test_case "inter-type members added to matching classes only"
      `Quick (fun () ->
        let aspect =
          Aspects.Aspect.make ~name:"It" ~concern:"test"
            ~intertypes:
              [
                Aspects.Aspect.It_field
                  ( "Serv*",
                    {
                      Code.Jdecl.field_name = "injected";
                      field_type = Code.Jtype.T_int;
                      field_mods = [ Code.Jdecl.M_private ];
                      field_init = None;
                    } );
                Aspects.Aspect.It_method
                  ( "Helper",
                    {
                      Code.Jdecl.method_name = "ping";
                      method_mods = [ Code.Jdecl.M_public ];
                      return_type = Code.Jtype.T_void;
                      params = [];
                      throws = [];
                      body = Some [];
                    } );
              ]
            ()
        in
        let { Weaver.Weave.program; _ } = Weaver.Weave.weave_one aspect (mk_program ()) in
        (match Code.Junit.find_class program "Service" with
        | Some c ->
            check cb "field injected" true
              (List.exists
                 (fun (f : Code.Jdecl.field) -> f.Code.Jdecl.field_name = "injected")
                 c.Code.Jdecl.fields)
        | None -> Alcotest.fail "Service missing");
        match Code.Junit.find_class program "Helper" with
        | Some c ->
            check cb "method injected" true (Code.Jdecl.find_method c "ping" <> None);
            check cb "field not injected" true (c.Code.Jdecl.fields = [])
        | None -> Alcotest.fail "Helper missing");
  ]

(* ---- precedence --------------------------------------------------------------- *)

let generated seq name advices =
  {
    Aspects.Generator.aspect = aspect_with ~name advices;
    from_transformation = "T." ^ name;
    seq;
  }

let precedence_tests =
  [
    Alcotest.test_case "order sorts by sequence number" `Quick (fun () ->
        let gs = [ generated 2 "Second" []; generated 1 "First" [] ] in
        check (Alcotest.list cs) "ordered" [ "First"; "Second" ]
          (List.map
             (fun g -> g.Aspects.Generator.aspect.Aspects.Aspect.aspect_name)
             (Weaver.Precedence.order gs));
        check cb "dominates" true
          (Weaver.Precedence.dominates (generated 1 "a" []) (generated 2 "b" [])));
    Alcotest.test_case "earlier transformation's before advice runs first"
      `Quick (fun () ->
        let gs =
          [
            generated 2 "Late"
              [
                Aspects.Advice.make Aspects.Advice.Before
                  (Aspects.Pointcut.execution "Service" "handle")
                  [ marker "LATE" ];
              ];
            generated 1 "Early"
              [
                Aspects.Advice.make Aspects.Advice.Before
                  (Aspects.Pointcut.execution "Service" "handle")
                  [ marker "EARLY" ];
              ];
          ]
        in
        let { Weaver.Weave.program; _ } = Weaver.Weave.weave gs (mk_program ()) in
        match body_of program "Service" "handle" with
        | Code.Jstmt.S_comment "EARLY" :: Code.Jstmt.S_comment "LATE" :: _ -> ()
        | body ->
            Alcotest.fail
              (String.concat " ; " (List.map Code.Printer.stmt_to_string body)));
    Alcotest.test_case "earlier around advice ends up outermost" `Quick
      (fun () ->
        let around tag =
          Aspects.Advice.make Aspects.Advice.Around
            (Aspects.Pointcut.execution "Service" "other")
            [ marker (tag ^ "-IN"); Aspects.Advice.proceed; marker (tag ^ "-OUT") ]
        in
        let gs = [ generated 1 "High" [ around "HIGH" ]; generated 2 "Low" [ around "LOW" ] ] in
        let { Weaver.Weave.program; _ } = Weaver.Weave.weave gs (mk_program ()) in
        match body_of program "Service" "other" with
        | [ Code.Jstmt.S_comment "HIGH-IN"; Code.Jstmt.S_block inner; Code.Jstmt.S_comment "HIGH-OUT" ]
          ->
            let inner_text =
              String.concat "\n" (List.map Code.Printer.stmt_to_string inner)
            in
            check cb "low inside high" true (contains inner_text "// LOW-IN")
        | body ->
            Alcotest.fail
              (String.concat " ; " (List.map Code.Printer.stmt_to_string body)));
    Alcotest.test_case "weave records applications across aspects" `Quick
      (fun () ->
        let gs =
          [
            generated 1 "A"
              [
                Aspects.Advice.make Aspects.Advice.Before
                  (Aspects.Pointcut.execution "*" "*")
                  [ marker "X" ];
              ];
          ]
        in
        let { Weaver.Weave.applications; _ } = Weaver.Weave.weave gs (mk_program ()) in
        (* three bodied methods in the program *)
        check ci "three applications" 3 (List.length applications));
    Alcotest.test_case "explain lists the order" `Quick (fun () ->
        let gs = [ generated 2 "B" []; generated 1 "A" [] ] in
        let text = Weaver.Precedence.explain gs in
        check cb "A first" true (contains text "1. A (from T.A)");
        check cb "B second" true (contains text "2. B (from T.B)"));
  ]

let weave_properties =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck2.Test.make ~name:"weaving is deterministic" ~count:100
        Gen.pointcut_gen (fun pc ->
          let aspect =
            aspect_with
              [ Aspects.Advice.make Aspects.Advice.Before pc [ marker "X" ] ]
          in
          let r1 = Weaver.Weave.weave_one aspect (mk_program ()) in
          let r2 = Weaver.Weave.weave_one aspect (mk_program ()) in
          Code.Junit.equal r1.Weaver.Weave.program r2.Weaver.Weave.program);
      QCheck2.Test.make
        ~name:"weaving never changes the number of declared methods" ~count:100
        Gen.pointcut_gen (fun pc ->
          let aspect =
            aspect_with
              [ Aspects.Advice.make Aspects.Advice.Before pc [ marker "X" ] ]
          in
          let r = Weaver.Weave.weave_one aspect (mk_program ()) in
          Code.Junit.total_methods r.Weaver.Weave.program
          = Code.Junit.total_methods (mk_program ()));
      QCheck2.Test.make
        ~name:"woven programs still round trip through the printer" ~count:60
        Gen.pointcut_gen (fun pc ->
          let aspect =
            aspect_with
              [ Aspects.Advice.make Aspects.Advice.Before pc [ marker "X" ] ]
          in
          let r = Weaver.Weave.weave_one aspect (mk_program ()) in
          List.for_all
            (fun u ->
              match
                Code.Jparser.parse_unit_opt (Code.Printer.unit_to_string u)
              with
              | Ok u' -> Code.Junit.equal [ u ] [ u' ]
              | Error _ -> false)
            r.Weaver.Weave.program);
    ]

(* ---- interference -------------------------------------------------------- *)

let interference_tests =
  let before pc = Aspects.Advice.make Aspects.Advice.Before pc [ marker "x" ] in
  let g seq name concern advices =
    {
      Aspects.Generator.aspect =
        Aspects.Aspect.make ~name ~concern ~advices ();
      from_transformation = "T." ^ name;
      seq;
    }
  in
  [
    Alcotest.test_case "shared join points are detected and ordered" `Quick
      (fun () ->
        let gs =
          [
            g 2 "B" "tx" [ before (Aspects.Pointcut.execution "Service" "handle") ];
            g 1 "A" "dist" [ before (Aspects.Pointcut.execution "Service" "*") ];
          ]
        in
        let report = Weaver.Interference.analyze gs (mk_program ()) in
        (* A advises handle+other, B advises handle only *)
        check ci "advised join points" 2 (List.length report.Weaver.Interference.entries);
        check ci "one shared" 1 (List.length report.Weaver.Interference.shared);
        let shared = List.hd report.Weaver.Interference.shared in
        check cs "where" "execution(Service.handle)"
          (Weaver.Joinpoint.describe shared.Weaver.Interference.at);
        check (Alcotest.list cs) "precedence order" [ "dist"; "tx" ]
          (List.map
             (fun (a : Weaver.Interference.advising) -> a.Weaver.Interference.concern)
             shared.Weaver.Interference.advisers));
    Alcotest.test_case "same concern twice is not cross-concern interference"
      `Quick (fun () ->
        let gs =
          [
            g 1 "A" "log" [ before (Aspects.Pointcut.execution "Service" "handle") ];
            g 2 "B" "log" [ before (Aspects.Pointcut.execution "Service" "handle") ];
          ]
        in
        let report = Weaver.Interference.analyze gs (mk_program ()) in
        check ci "no shared" 0 (List.length report.Weaver.Interference.shared));
    Alcotest.test_case "render marks shared join points" `Quick (fun () ->
        let gs =
          [
            g 1 "A" "dist" [ before (Aspects.Pointcut.execution "Service" "*") ];
            g 2 "B" "tx" [ before (Aspects.Pointcut.execution "Service" "handle") ];
          ]
        in
        let text =
          Weaver.Interference.render
            (Weaver.Interference.analyze gs (mk_program ()))
        in
        check cb "bang marker" true (contains text "[!] execution(Service.handle)");
        check cb "summary" true (contains text "1 shared across concerns"));
    Alcotest.test_case "call and field-set join points are reported" `Quick
      (fun () ->
        (* all three shadow kinds in one report: Helper.run's call site and
           the this.state assignment, both inside Service.handle *)
        let gs =
          [
            g 1 "A" "log" [ before (Aspects.Pointcut.call "Helper" "run") ];
            g 2 "B" "audit"
              [ before (Aspects.Pointcut.set_field "Service" "state") ];
          ]
        in
        let report = Weaver.Interference.analyze gs (mk_program ()) in
        let described =
          List.map
            (fun (e : Weaver.Interference.entry) ->
              Weaver.Joinpoint.describe e.Weaver.Interference.at)
            report.Weaver.Interference.entries
        in
        check (Alcotest.list cs) "both statement shadows advised"
          [ "call(Helper.run)"; "set(Service.state)" ]
          described;
        (* distinct statements, but inside the same method body: the
           conservative same-method collision rule reports the pair *)
        check cb "same-method statement advice conflicts" true
          (List.for_all
             (fun (p : Weaver.Interference.pair) ->
               match p.Weaver.Interference.verdict with
               | Weaver.Interference.Conflicting _ -> true
               | Weaver.Interference.Independent -> false)
             report.Weaver.Interference.pairs));
    Alcotest.test_case "entry.shared is per-entry, not physical identity"
      `Quick (fun () ->
        (* the old render path used [List.memq] against the shared subset,
           which silently depended on physical equality of entries; the
           flag now travels on the entry itself *)
        let gs =
          [
            g 1 "A" "dist" [ before (Aspects.Pointcut.execution "Service" "*") ];
            g 2 "B" "tx"
              [ before (Aspects.Pointcut.execution "Service" "handle") ];
          ]
        in
        let report = Weaver.Interference.analyze gs (mk_program ()) in
        let flag_of name =
          List.find_map
            (fun (e : Weaver.Interference.entry) ->
              if
                Weaver.Joinpoint.describe e.Weaver.Interference.at
                = "execution(Service." ^ name ^ ")"
              then Some e.Weaver.Interference.shared
              else None)
            report.Weaver.Interference.entries
        in
        check (Alcotest.option cb) "handle shared" (Some true)
          (flag_of "handle");
        check (Alcotest.option cb) "other not shared" (Some false)
          (flag_of "other"));
    Alcotest.test_case "overlapping wrap advice is a conflicting pair" `Quick
      (fun () ->
        let gs =
          [
            g 1 "A" "dist" [ before (Aspects.Pointcut.execution "Service" "handle") ];
            g 2 "B" "tx"
              [
                Aspects.Advice.make Aspects.Advice.Around
                  (Aspects.Pointcut.execution "Service" "handle")
                  [ marker "wrap"; Aspects.Advice.proceed ];
              ];
          ]
        in
        let report = Weaver.Interference.analyze gs (mk_program ()) in
        match report.Weaver.Interference.pairs with
        | [ { left = "A"; right = "B"; verdict = Conflicting { witness; _ } } ]
          ->
            check (Alcotest.option cs) "witness shadow"
              (Some "execution(Service.handle)")
              (Option.map Weaver.Joinpoint.describe witness)
        | _ -> Alcotest.fail "expected exactly one conflicting pair A x B");
    Alcotest.test_case "before and after-returning at one shadow commute"
      `Quick (fun () ->
        let program = mk_program () in
        let mk time name =
          Aspects.Aspect.make ~name ~concern:name
            ~advices:
              [
                Aspects.Advice.make time
                  (Aspects.Pointcut.execution "Service" "handle")
                  [ marker name ];
              ]
            ()
        in
        let a = mk Aspects.Advice.Before "A"
        and b = mk Aspects.Advice.After_returning "B" in
        let gs =
          [
            { Aspects.Generator.aspect = a; from_transformation = "T.A"; seq = 1 };
            { Aspects.Generator.aspect = b; from_transformation = "T.B"; seq = 2 };
          ]
        in
        let report = Weaver.Interference.analyze gs program in
        check cb "reported independent" true
          (List.for_all
             (fun (p : Weaver.Interference.pair) ->
               p.Weaver.Interference.verdict = Weaver.Interference.Independent)
             report.Weaver.Interference.pairs);
        (* and they really do commute *)
        let once x p = (Weaver.Weave.weave_one x p).Weaver.Weave.program in
        check cb "weaves commute" true
          (Code.Junit.equal (once a (once b program)) (once b (once a program))));
    Alcotest.test_case "render lists pair verdicts" `Quick (fun () ->
        (* one report with a provably independent pair, one with a
           conflicting pair — both renderings are locked *)
        let independent_gs =
          [
            g 1 "A" "log" [ before (Aspects.Pointcut.execution "Service" "other") ];
            g 2 "B" "audit" [ before (Aspects.Pointcut.execution "Helper" "run") ];
          ]
        in
        let text =
          Weaver.Interference.render
            (Weaver.Interference.analyze independent_gs (mk_program ()))
        in
        check cb "pair summary" true
          (contains text "aspect pairs: 1 independent, 0 conflicting");
        check cb "pair line" true (contains text "A ~ B: independent");
        let conflicting_gs =
          [
            g 1 "A" "log" [ before (Aspects.Pointcut.call "Helper" "run") ];
            g 2 "B" "audit"
              [ before (Aspects.Pointcut.set_field "Service" "state") ];
          ]
        in
        let text =
          Weaver.Interference.render
            (Weaver.Interference.analyze conflicting_gs (mk_program ()))
        in
        check cb "conflict summary" true
          (contains text "aspect pairs: 0 independent, 1 conflicting");
        check cb "conflict line marked" true (contains text "[!] A x B:"));
  ]

(* ---- incremental re-weave ------------------------------------------------- *)

let incremental_tests =
  let before name pc =
    Aspects.Advice.make Aspects.Advice.Before pc [ marker name ]
  in
  let g seq name advices =
    {
      Aspects.Generator.aspect =
        Aspects.Aspect.make ~name ~concern:name ~advices ();
      from_transformation = "T." ^ name;
      seq;
    }
  in
  let aspects () =
    [
      g 1 "A" [ before "A" (Aspects.Pointcut.execution "Service" "*") ];
      g 2 "B" [ before "B" (Aspects.Pointcut.call "Helper" "run") ];
    ]
  in
  let agree msg (r1 : Weaver.Weave.result) (r2 : Weaver.Weave.result) =
    check cb (msg ^ ": program") true
      (Code.Junit.equal r1.Weaver.Weave.program r2.Weaver.Weave.program);
    check cb (msg ^ ": applications") true
      (r1.Weaver.Weave.applications = r2.Weaver.Weave.applications)
  in
  [
    Alcotest.test_case "initial state equals the scan baseline" `Quick
      (fun () ->
        let program = mk_program () in
        let gs = aspects () in
        let st = Weaver.Weave.initial gs program in
        agree "initial" (Weaver.Weave.result_of st)
          (Weaver.Weave.weave_scan gs program));
    Alcotest.test_case "reweave after an edit equals a fresh full weave"
      `Quick (fun () ->
        let program = mk_program () in
        let gs = aspects () in
        let st = Weaver.Weave.initial gs program in
        (* touch only Service: empty handle's body *)
        let edited =
          Code.Junit.update_class program "Service" (fun c ->
              {
                c with
                Code.Jdecl.methods =
                  List.map
                    (fun m ->
                      if m.Code.Jdecl.method_name = "handle" then
                        { m with Code.Jdecl.body = Some [ marker "edited" ] }
                      else m)
                    c.Code.Jdecl.methods;
              })
        in
        let st = Weaver.Weave.reweave st edited in
        agree "after edit" (Weaver.Weave.result_of st)
          (Weaver.Weave.weave_scan gs edited);
        (* a second reweave with no changes is still the same answer *)
        let st = Weaver.Weave.reweave st edited in
        agree "no-op reweave" (Weaver.Weave.result_of st)
          (Weaver.Weave.weave_scan gs edited));
    Alcotest.test_case "reweave tracks class addition and removal" `Quick
      (fun () ->
        let program = mk_program () in
        let gs = aspects () in
        let st = Weaver.Weave.initial gs program in
        let smaller =
          List.map
            (fun u ->
              {
                u with
                Code.Junit.decls =
                  List.filter
                    (function
                      | Code.Jdecl.Class c ->
                          c.Code.Jdecl.class_name <> "Helper"
                      | Code.Jdecl.Interface _ -> true)
                    u.Code.Junit.decls;
              })
            program
        in
        let st = Weaver.Weave.reweave st smaller in
        agree "after removal" (Weaver.Weave.result_of st)
          (Weaver.Weave.weave_scan gs smaller);
        let st = Weaver.Weave.reweave st program in
        agree "after re-adding" (Weaver.Weave.result_of st)
          (Weaver.Weave.weave_scan gs program));
  ]

let () =
  Alcotest.run "weaver"
    [
      ("joinpoints", joinpoint_tests);
      ("matcher", matcher_tests @ matcher_properties);
      ("weaving", weave_tests @ weave_properties);
      ("precedence", precedence_tests);
      ("interference", interference_tests);
      ("incremental", incremental_tests);
    ]
