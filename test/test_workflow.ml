(* Tests for the workflow layer: concern coloring, the workflow state
   machine, guidance, and the wizard parsing. *)

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---- color ---------------------------------------------------------------- *)

let diff_adding ids =
  {
    Mof.Diff.added = Mof.Id.Set.of_list (List.map Mof.Id.of_int ids);
    removed = Mof.Id.Set.empty;
    modified = Mof.Id.Set.empty;
  }

let color_tests =
  [
    Alcotest.test_case "assignment follows first-application order" `Quick
      (fun () ->
        let palette = Workflow.Color.assign [ "x"; "y" ] in
        check cb "x red" true (List.assoc_opt "x" palette = Some "red");
        check cb "y blue" true (List.assoc_opt "y" palette = Some "blue"));
    Alcotest.test_case "palette wraps past its length" `Quick (fun () ->
        let many = List.init 10 (fun i -> "c" ^ string_of_int i) in
        let palette = Workflow.Color.assign many in
        check ci "all assigned" 10 (List.length palette);
        check cb "wrapped" true
          (List.assoc_opt "c8" palette = List.assoc_opt "c0" palette));
    Alcotest.test_case "color_of resolves through the trace" `Quick (fun () ->
        let trace =
          Transform.Trace.record ~transformation:"T" ~concern:"dist"
            (diff_adding [ 5 ]) Transform.Trace.empty
        in
        let palette = Workflow.Color.of_trace trace in
        check cb "traced element" true
          (Workflow.Color.color_of palette trace (Mof.Id.of_int 5) = Some "red");
        check cb "functional element" true
          (Workflow.Color.color_of palette trace (Mof.Id.of_int 6) = None));
    Alcotest.test_case "HTML demarcation escapes and colors" `Quick (fun () ->
        let m = Fixtures.banking () in
        let m2, added =
          Mof.Builder.add_class m ~owner:(Mof.Model.root m) ~name:"A<B>&C"
        in
        let trace =
          Transform.Trace.record ~transformation:"T" ~concern:"dist"
            (diff_adding [ Mof.Id.to_int added ])
            Transform.Trace.empty
        in
        let html = Workflow.Color.demarcate_html m2 trace in
        let contains needle =
          let nl = String.length needle and hl = String.length html in
          let rec go i = i + nl <= hl && (String.sub html i nl = needle || go (i + 1)) in
          go 0
        in
        check cb "escaped name" true (contains "A&lt;B&gt;&amp;C");
        check cb "no raw angle name" false (contains "Class A<B>&C");
        check cb "colored row" true (contains "style=\"color:red\"");
        check cb "legend row" true (contains "<td>dist</td>");
        check cb "well-formed page" true (contains "</html>"));
    Alcotest.test_case "legend and demarcation" `Quick (fun () ->
        let m = Fixtures.banking () in
        let m2, added = Mof.Builder.add_class m ~owner:(Mof.Model.root m) ~name:"Proxy9" in
        let trace =
          Transform.Trace.record ~transformation:"T" ~concern:"dist"
            (diff_adding [ Mof.Id.to_int added ])
            Transform.Trace.empty
        in
        let text = Workflow.Color.demarcate m2 trace in
        check cb "colored line" true (contains text "[red] Class Proxy9");
        check cb "uncolored functional" true (contains text "\nClass Account");
        check cb "legend" true (contains text "red — dist"));
  ]

(* ---- state ------------------------------------------------------------------ *)

let state_tests =
  let wf = Workflow.State.middleware_default in
  [
    Alcotest.test_case "the default middleware sequence advances" `Quick
      (fun () ->
        let p = Workflow.State.start wf in
        let advance p concern =
          match Workflow.State.advance p ~concern with
          | Ok p -> p
          | Error e -> Alcotest.fail e
        in
        let p = advance p "distribution" in
        let p = advance p "transactions" in
        let p = advance p "security" in
        check cb "complete after mandatory steps" true (Workflow.State.is_complete p);
        check (Alcotest.list cs) "applied"
          [ "distribution"; "transactions"; "security" ]
          (Workflow.State.applied_concerns p);
        (* optional steps still available *)
        let p = advance p "concurrency" in
        let p = advance p "logging" in
        check cb "still complete" true (Workflow.State.is_complete p));
    Alcotest.test_case "wrong order is rejected with a helpful message" `Quick
      (fun () ->
        let p = Workflow.State.start wf in
        match Workflow.State.advance p ~concern:"security" with
        | Error msg ->
            check cb "names the step" true (contains msg "distribute");
            check cb "lists the choices" true (contains msg "distribution")
        | Ok _ -> Alcotest.fail "should be rejected");
    Alcotest.test_case "optional steps can be skipped" `Quick (fun () ->
        let p = Workflow.State.start wf in
        let p = Result.get_ok (Workflow.State.advance p ~concern:"distribution") in
        let p = Result.get_ok (Workflow.State.advance p ~concern:"transactions") in
        let p = Result.get_ok (Workflow.State.advance p ~concern:"security") in
        (* jump straight to logging, skipping the optional concurrency step *)
        match Workflow.State.advance p ~concern:"logging" with
        | Ok p' ->
            check cb "complete" true (Workflow.State.is_complete p');
            check cb "workflow exhausted" true
              (Workflow.State.current_step p' = None)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "mandatory steps cannot be skipped" `Quick (fun () ->
        let p = Workflow.State.start wf in
        let p = Result.get_ok (Workflow.State.advance p ~concern:"distribution") in
        check cb "security too early" true
          (Result.is_error (Workflow.State.advance p ~concern:"security")));
    Alcotest.test_case "advance after completion is rejected" `Quick (fun () ->
        let tiny = Workflow.State.workflow [ Workflow.State.step ~name:"only" [ "x" ] ] in
        let p = Workflow.State.start tiny in
        let p = Result.get_ok (Workflow.State.advance p ~concern:"x") in
        check cb "rejected" true (Result.is_error (Workflow.State.advance p ~concern:"x")));
    Alcotest.test_case "options look through optional steps" `Quick (fun () ->
        let wf2 =
          Workflow.State.workflow
            [
              Workflow.State.step ~optional:true ~name:"opt" [ "a" ];
              Workflow.State.step ~name:"must" [ "b" ];
            ]
        in
        let p = Workflow.State.start wf2 in
        check (Alcotest.list cs) "both visible" [ "a"; "b" ] (Workflow.State.options p);
        check cb "b allowed directly" true
          (Result.is_ok (Workflow.State.advance p ~concern:"b")));
    Alcotest.test_case "remaining_concerns covers the tail" `Quick (fun () ->
        let p = Workflow.State.start wf in
        let p = Result.get_ok (Workflow.State.advance p ~concern:"distribution") in
        check (Alcotest.list cs) "rest"
          [ "transactions"; "security"; "concurrency"; "logging" ]
          (Workflow.State.remaining_concerns p));
    Alcotest.test_case "completed pairs steps with concerns" `Quick (fun () ->
        let p = Workflow.State.start wf in
        let p = Result.get_ok (Workflow.State.advance p ~concern:"distribution") in
        check cb "pair" true
          (Workflow.State.completed p = [ ("distribute", "distribution") ]));
    Alcotest.test_case "definition is recoverable" `Quick (fun () ->
        let p = Workflow.State.start wf in
        check ci "steps" 5 (List.length (Workflow.State.definition p).Workflow.State.steps));
  ]

(* ---- derive ------------------------------------------------------------------- *)

let derive_tests =
  [
    Alcotest.test_case "topological order respects prerequisites" `Quick
      (fun () ->
        let wf =
          Result.get_ok
            (Workflow.Derive.from_dependencies
               [ ("c", [ "b" ]); ("a", []); ("b", [ "a" ]) ])
        in
        let order =
          List.concat_map (fun s -> s.Workflow.State.choices) wf.Workflow.State.steps
        in
        check (Alcotest.list cs) "a before b before c" [ "a"; "b"; "c" ] order);
    Alcotest.test_case "declaration order breaks ties" `Quick (fun () ->
        let wf =
          Result.get_ok
            (Workflow.Derive.from_dependencies [ ("x", []); ("y", []); ("z", []) ])
        in
        let order =
          List.concat_map (fun s -> s.Workflow.State.choices) wf.Workflow.State.steps
        in
        check (Alcotest.list cs) "stable" [ "x"; "y"; "z" ] order);
    Alcotest.test_case "optional concerns become optional steps" `Quick
      (fun () ->
        let wf =
          Result.get_ok
            (Workflow.Derive.from_dependencies ~optional:[ "y" ]
               [ ("x", []); ("y", []) ])
        in
        check cb "y optional" true
          (List.exists
             (fun s -> s.Workflow.State.optional && s.Workflow.State.choices = [ "y" ])
             wf.Workflow.State.steps));
    Alcotest.test_case "cycles are reported with their members" `Quick
      (fun () ->
        match Workflow.Derive.from_dependencies [ ("a", [ "b" ]); ("b", [ "a" ]) ] with
        | Error msg ->
            check cb "names members" true
              (let contains hay needle =
                 let nl = String.length needle and hl = String.length hay in
                 let rec go i =
                   i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
                 in
                 go 0
               in
               contains msg "a" && contains msg "b")
        | Ok _ -> Alcotest.fail "cycle accepted");
    Alcotest.test_case "unknown prerequisite and duplicates rejected" `Quick
      (fun () ->
        check cb "unknown" true
          (Result.is_error (Workflow.Derive.from_dependencies [ ("a", [ "ghost" ]) ]));
        check cb "duplicate" true
          (Result.is_error
             (Workflow.Derive.from_dependencies [ ("a", []); ("a", []) ])));
    Alcotest.test_case
      "middleware dependencies admit the default sequence" `Quick (fun () ->
        let wf =
          Result.get_ok
            (Workflow.Derive.from_dependencies
               ~optional:[ "concurrency"; "logging" ]
               Workflow.Derive.middleware_dependencies)
        in
        let p = Workflow.State.start wf in
        let p = Result.get_ok (Workflow.State.advance p ~concern:"distribution") in
        let p = Result.get_ok (Workflow.State.advance p ~concern:"transactions") in
        let p = Result.get_ok (Workflow.State.advance p ~concern:"security") in
        check cb "complete" true (Workflow.State.is_complete p));
  ]

(* ---- guidance ----------------------------------------------------------------- *)

let guidance_tests =
  [
    Alcotest.test_case "describe shows progress and remaining concerns" `Quick
      (fun () ->
        let p = Workflow.State.start Workflow.State.middleware_default in
        let p = Result.get_ok (Workflow.State.advance p ~concern:"distribution") in
        let text = Workflow.Guidance.describe p in
        check cb "done line" true (contains text "[x] distribute: distribution");
        check cb "current line" true (contains text "[ ] make-transactional");
        check cb "remaining" true (contains text "remaining concerns:"));
    Alcotest.test_case "consistent_with_trace compares sequences" `Quick
      (fun () ->
        let p = Workflow.State.start Workflow.State.middleware_default in
        let p = Result.get_ok (Workflow.State.advance p ~concern:"distribution") in
        let trace =
          Transform.Trace.record ~transformation:"T" ~concern:"distribution"
            Mof.Diff.empty Transform.Trace.empty
        in
        check cb "consistent" true (Workflow.Guidance.consistent_with_trace p trace);
        let trace2 =
          Transform.Trace.record ~transformation:"T" ~concern:"security"
            Mof.Diff.empty Transform.Trace.empty
        in
        check cb "inconsistent" false (Workflow.Guidance.consistent_with_trace p trace2));
    Alcotest.test_case "interference_brief with no pairs is reassuring" `Quick
      (fun () ->
        let text = Workflow.Guidance.interference_brief [] in
        check cb "safe-order message" true
          (contains text "any concern order is safe"));
    Alcotest.test_case "interference_brief flags order-sensitive pairs" `Quick
      (fun () ->
        let pairs =
          [
            {
              Workflow.Guidance.pair_left = "security";
              pair_right = "logging";
              pair_conflict = None;
            };
            {
              Workflow.Guidance.pair_left = "transactions";
              pair_right = "concurrency";
              pair_conflict = Some "both advise Account.withdraw";
            };
          ]
        in
        let text = Workflow.Guidance.interference_brief pairs in
        check cb "counts pairs" true (contains text "2 pair(s)");
        check cb "counts conflicts" true (contains text "1 order-sensitive");
        check cb "independent pair marked ok" true
          (contains text "[ok] security ~ logging");
        check cb "conflicting pair flagged" true
          (contains text "[!!] transactions ~ concurrency");
        check cb "reason surfaced" true
          (contains text "both advise Account.withdraw");
        check cb "order called load-bearing" true
          (contains text "workflow order is load-bearing"));
  ]

(* ---- wizard ------------------------------------------------------------------- *)

let wizard_tests =
  let decls = Concerns.Distribution.formals in
  [
    Alcotest.test_case "questions mirror the declarations" `Quick (fun () ->
        let qs = Workflow.Wizard.questions decls in
        check ci "three" 3 (List.length qs);
        let q = List.hd qs in
        check cs "name" "remote" q.Workflow.Wizard.parameter;
        check cs "type" "list(ident)" q.Workflow.Wizard.type_hint;
        check cb "required" true (q.Workflow.Wizard.default_hint = None));
    Alcotest.test_case "render_questions mentions defaults" `Quick (fun () ->
        let text = Workflow.Wizard.render_questions decls in
        check cb "required marker" true (contains text "(required)");
        check cb "default marker" true (contains text "(default \"rmi\")"));
    Alcotest.test_case "parse_value per type" `Quick (fun () ->
        let ok = Result.is_ok and err = Result.is_error in
        check cb "int" true (ok (Workflow.Wizard.parse_value Transform.Params.P_int "42"));
        check cb "bad int" true (err (Workflow.Wizard.parse_value Transform.Params.P_int "x"));
        check cb "bool" true (ok (Workflow.Wizard.parse_value Transform.Params.P_bool "true"));
        check cb "bad bool" true (err (Workflow.Wizard.parse_value Transform.Params.P_bool "yes"));
        check cb "enum" true
          (ok (Workflow.Wizard.parse_value (Transform.Params.P_enum [ "a"; "b" ]) "a"));
        check cb "bad enum" true
          (err (Workflow.Wizard.parse_value (Transform.Params.P_enum [ "a"; "b" ]) "c"));
        match
          Workflow.Wizard.parse_value
            (Transform.Params.P_list Transform.Params.P_ident)
            "A, B , C"
        with
        | Ok (Transform.Params.V_list vs) -> check ci "three items" 3 (List.length vs)
        | _ -> Alcotest.fail "list parse failed");
    Alcotest.test_case "parse_assignment uses the declared type" `Quick
      (fun () ->
        (match Workflow.Wizard.parse_assignment decls "remote=Account,Teller" with
        | Ok ("remote", Transform.Params.V_list vs) ->
            check ci "two" 2 (List.length vs)
        | _ -> Alcotest.fail "assignment failed");
        check cb "unknown param" true
          (Result.is_error (Workflow.Wizard.parse_assignment decls "nope=1"));
        check cb "missing equals" true
          (Result.is_error (Workflow.Wizard.parse_assignment decls "remote")));
    Alcotest.test_case "parse_assignments is all-or-nothing" `Quick (fun () ->
        check cb "good" true
          (Result.is_ok
             (Workflow.Wizard.parse_assignments decls
                [ "remote=A"; "protocol=ws" ]));
        check cb "one bad poisons all" true
          (Result.is_error
             (Workflow.Wizard.parse_assignments decls
                [ "remote=A"; "protocol=smoke-signals" ])));
  ]

let () =
  Alcotest.run "workflow"
    [
      ("color", color_tests);
      ("state", state_tests);
      ("derive", derive_tests);
      ("guidance", guidance_tests);
      ("wizard", wizard_tests);
    ]
