(* Tests for the XML substrate and the XMI import/export round trip. *)

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

let parse = Xmi.Xml_parser.parse
let print ?declaration tree = Xmi.Xml_printer.to_string ?declaration tree

(* ---- xml accessors ----------------------------------------------------- *)

let xml_tests =
  let tree =
    Xmi.Xml.elem ~attrs:[ ("a", "1"); ("b", "2") ] "root"
      [
        Xmi.Xml.elem "child" [ Xmi.Xml.text "hello" ];
        Xmi.Xml.elem ~attrs:[ ("k", "v") ] "child" [];
        Xmi.Xml.elem "other" [];
      ]
  in
  [
    Alcotest.test_case "attr lookup" `Quick (fun () ->
        check cb "a" true (Xmi.Xml.attr "a" tree = Some "1");
        check cb "missing" true (Xmi.Xml.attr "z" tree = None));
    Alcotest.test_case "find_child / find_children" `Quick (fun () ->
        check ci "children named child" 2
          (List.length (Xmi.Xml.find_children "child" tree));
        check cb "first child has text" true
          (match Xmi.Xml.find_child "child" tree with
          | Some c -> Xmi.Xml.text_content c = "hello"
          | None -> false));
    Alcotest.test_case "child_elems skips text" `Quick (fun () ->
        let mixed = Xmi.Xml.elem "m" [ Xmi.Xml.text "t"; Xmi.Xml.elem "e" [] ] in
        check ci "one element" 1 (List.length (Xmi.Xml.child_elems mixed)));
    Alcotest.test_case "tag of text is None" `Quick (fun () ->
        check cb "none" true (Xmi.Xml.tag (Xmi.Xml.text "x") = None));
  ]

(* ---- xml parser -------------------------------------------------------- *)

let parser_tests =
  [
    Alcotest.test_case "attributes with both quote styles" `Quick (fun () ->
        let tree = parse "<a x=\"1\" y='2'/>" in
        check cb "x" true (Xmi.Xml.attr "x" tree = Some "1");
        check cb "y" true (Xmi.Xml.attr "y" tree = Some "2"));
    Alcotest.test_case "entities resolved" `Quick (fun () ->
        let tree = parse "<a x=\"&lt;&gt;&amp;&quot;&apos;\">&amp;text</a>" in
        check cb "attr" true (Xmi.Xml.attr "x" tree = Some "<>&\"'");
        check cs "text" "&text" (Xmi.Xml.text_content tree));
    Alcotest.test_case "character references" `Quick (fun () ->
        let tree = parse "<a>&#65;&#x42;</a>" in
        check cs "AB" "AB" (Xmi.Xml.text_content tree));
    Alcotest.test_case "character references decode to UTF-8" `Quick (fun () ->
        (* &#233; = é (2 bytes), &#x1F600; = 😀 (4 bytes): references above
           U+007F must produce UTF-8, not raw Latin-1 bytes *)
        let tree = parse "<a>&#233; &#x433; &#x20AC; &#x1F600;</a>" in
        check cs "utf8" "\xC3\xA9 \xD0\xB3 \xE2\x82\xAC \xF0\x9F\x98\x80"
          (Xmi.Xml.text_content tree);
        let tree = parse "<a x=\"caf&#xE9;\"/>" in
        check cb "attr" true (Xmi.Xml.attr "x" tree = Some "caf\xC3\xA9"));
    Alcotest.test_case "surrogate and out-of-range references rejected" `Quick
      (fun () ->
        List.iter
          (fun src ->
            check cb src true
              (try
                 ignore (parse src);
                 false
               with Xmi.Xml_parser.Xml_error _ -> true))
          [
            "<a>&#xD800;</a>";
            "<a>&#xDFFF;</a>";
            "<a>&#x110000;</a>";
            "<a>&#5000000;</a>";
          ]);
    Alcotest.test_case "CDATA preserved verbatim" `Quick (fun () ->
        let tree = parse "<a><![CDATA[1 < 2 && 3 > 2]]></a>" in
        check cs "cdata" "1 < 2 && 3 > 2" (Xmi.Xml.text_content tree));
    Alcotest.test_case "comments and prolog skipped" `Quick (fun () ->
        let tree =
          parse "<?xml version=\"1.0\"?><!-- hi --><a><!-- in --><b/></a>"
        in
        check ci "one child" 1 (List.length (Xmi.Xml.child_elems tree)));
    Alcotest.test_case "nested structure and order" `Quick (fun () ->
        let tree = parse "<a><b/><c/><b/></a>" in
        check (Alcotest.list cs) "order" [ "b"; "c"; "b" ]
          (List.filter_map Xmi.Xml.tag (Xmi.Xml.children tree)));
    Alcotest.test_case "whitespace-only text dropped" `Quick (fun () ->
        let tree = parse "<a>\n  <b/>\n</a>" in
        check ci "children" 1 (List.length (Xmi.Xml.children tree)));
    Alcotest.test_case "mismatched closing tag rejected" `Quick (fun () ->
        check cb "raises" true
          (try
             ignore (parse "<a></b>");
             false
           with Xmi.Xml_parser.Xml_error _ -> true));
    Alcotest.test_case "trailing content rejected" `Quick (fun () ->
        check cb "raises" true
          (try
             ignore (parse "<a/><b/>");
             false
           with Xmi.Xml_parser.Xml_error _ -> true));
    Alcotest.test_case "unterminated input rejected" `Quick (fun () ->
        List.iter
          (fun src ->
            check cb src true
              (try
                 ignore (parse src);
                 false
               with Xmi.Xml_parser.Xml_error _ -> true))
          [ "<a>"; "<a attr='1"; "<a><!-- never closed"; "" ]);
    Alcotest.test_case "unknown entity rejected" `Quick (fun () ->
        check cb "raises" true
          (try
             ignore (parse "<a>&nope;</a>");
             false
           with Xmi.Xml_parser.Xml_error _ -> true));
  ]

(* ---- xml printer ------------------------------------------------------- *)

let printer_tests =
  [
    Alcotest.test_case "escaping in attributes and text" `Quick (fun () ->
        let tree =
          Xmi.Xml.elem ~attrs:[ ("x", "<a> & \"b\"") ] "t"
            [ Xmi.Xml.text "1 < 2 & 3" ]
        in
        let round = parse (print tree) in
        check cb "round trip" true (Xmi.Xml.equal tree round));
    Alcotest.test_case "declaration toggle" `Quick (fun () ->
        let tree = Xmi.Xml.elem "a" [] in
        check cb "with" true
          (String.length (print tree) > String.length (print ~declaration:false tree)));
    Alcotest.test_case "print/parse round trip on nested trees" `Quick (fun () ->
        let tree =
          Xmi.Xml.elem "a"
            [
              Xmi.Xml.elem ~attrs:[ ("k", "v") ] "b"
                [ Xmi.Xml.elem "c" [ Xmi.Xml.text "deep" ] ];
              Xmi.Xml.elem "b" [];
            ]
        in
        check cb "equal" true (Xmi.Xml.equal tree (parse (print tree))));
  ]

(* ---- datatype serialization -------------------------------------------- *)

let dtype_tests =
  [
    Alcotest.test_case "round trips" `Quick (fun () ->
        List.iter
          (fun dt ->
            check cb
              (Xmi.Dtype.to_string dt)
              true
              (Xmi.Dtype.of_string (Xmi.Dtype.to_string dt) = Some dt))
          [
            Mof.Kind.Dt_void;
            Mof.Kind.Dt_boolean;
            Mof.Kind.Dt_integer;
            Mof.Kind.Dt_real;
            Mof.Kind.Dt_string;
            Mof.Kind.Dt_ref (Mof.Id.of_int 12);
            Mof.Kind.Dt_collection Mof.Kind.Dt_string;
            Mof.Kind.Dt_collection (Mof.Kind.Dt_collection Mof.Kind.Dt_integer);
            Mof.Kind.Dt_collection (Mof.Kind.Dt_ref (Mof.Id.of_int 3));
          ]);
    Alcotest.test_case "rejects malformed input" `Quick (fun () ->
        List.iter
          (fun s -> check cb s true (Xmi.Dtype.of_string s = None))
          [ ""; "int"; "ref:"; "ref:x"; "Set("; "Set(Integer"; "Set()" ]);
  ]

(* ---- XMI round trip ----------------------------------------------------- *)

let special_model () =
  (* a model exercising every element kind, plus text needing escapes *)
  let m = Fixtures.banking () in
  let acct = Fixtures.class_id m "Account" in
  let m = Mof.Builder.add_stereotype m acct "entity" in
  let m = Mof.Builder.set_tag m acct "note" "a < b & \"c\" 'd'" in
  let m, _ =
    Mof.Builder.add_constraint m ~owner:(Mof.Model.root m) ~name:"tricky"
      ~constrained:[ acct ]
      ~body:"self.name <> '<&>' and 1 < 2"
  in
  let m, _ =
    Mof.Builder.add_enumeration m ~owner:(Mof.Model.root m) ~name:"Currency"
      ~literals:[ "CHF"; "EUR" ]
  in
  Mof.Model.set_level_tag "PIM" m

let xmi_tests =
  [
    Alcotest.test_case "banking round trip is structurally equal" `Quick
      (fun () ->
        let m = Fixtures.banking () in
        let m' = Xmi.Import.from_string (Xmi.Export.to_string m) in
        check cb "equal" true (Mof.Model.equal m m'));
    Alcotest.test_case "special characters survive the round trip" `Quick
      (fun () ->
        let m = special_model () in
        let m' = Xmi.Import.from_string (Xmi.Export.to_string m) in
        check cb "equal" true (Mof.Model.equal m m'));
    Alcotest.test_case "refined model (stereotypes everywhere) round trips"
      `Quick (fun () ->
        let m = Fixtures.banking () in
        let gmt = Concerns.Distribution.transformation in
        let cmt =
          Transform.Cmt.specialize_exn gmt
            [
              ( "remote",
                Transform.Params.V_list
                  [ Transform.Params.V_ident "Account" ] );
            ]
        in
        match Transform.Engine.apply cmt m with
        | Ok outcome ->
            let refined = outcome.Transform.Engine.model in
            let m' = Xmi.Import.from_string (Xmi.Export.to_string refined) in
            check cb "equal" true (Mof.Model.equal refined m')
        | Error _ -> Alcotest.fail "transformation failed");
    Alcotest.test_case "fresh ids after import do not clash" `Quick (fun () ->
        let m = Fixtures.banking () in
        let m' = Xmi.Import.from_string (Xmi.Export.to_string m) in
        let m'', id = Mof.Builder.add_class m' ~owner:(Mof.Model.root m') ~name:"New" in
        check cb "well-formed" true (Mof.Wellformed.is_wellformed m'');
        check cb "fresh id unbound before" true (not (Mof.Model.mem m' id)));
    Alcotest.test_case "import rejects a non-XMI root" `Quick (fun () ->
        check cb "raises" true
          (try
             ignore (Xmi.Import.from_string "<NotXmi/>");
             false
           with Xmi.Import.Import_error _ -> true));
    Alcotest.test_case "import rejects missing content" `Quick (fun () ->
        check cb "raises" true
          (try
             ignore (Xmi.Import.from_string "<XMI xmi.version=\"1.2\"/>");
             false
           with Xmi.Import.Import_error _ -> true));
    Alcotest.test_case "import rejects malformed element ids" `Quick (fun () ->
        let doc =
          "<XMI xmi.version=\"1.2\"><XMI.content><Model name=\"x\" \
           root=\"e0\" next=\"1\"><Package xmi.id=\"banana\" \
           name=\"x\"/></Model></XMI.content></XMI>"
        in
        check cb "raises" true
          (try
             ignore (Xmi.Import.from_string doc);
             false
           with Xmi.Import.Import_error _ -> true));
    Alcotest.test_case "import rejects unknown element tags" `Quick (fun () ->
        let doc =
          "<XMI xmi.version=\"1.2\"><XMI.content><Model name=\"x\" \
           root=\"e0\" next=\"2\"><Widget xmi.id=\"e0\" \
           name=\"x\"/></Model></XMI.content></XMI>"
        in
        check cb "raises" true
          (try
             ignore (Xmi.Import.from_string doc);
             false
           with Xmi.Import.Import_error _ -> true));
    Alcotest.test_case "newlines in tagged values survive" `Quick (fun () ->
        let m = Fixtures.banking () in
        let acct = Fixtures.class_id m "Account" in
        let m = Mof.Builder.set_tag m acct "doc" "line one\nline two" in
        let m2 = Xmi.Import.from_string (Xmi.Export.to_string m) in
        check cb "preserved" true
          (Mof.Element.tag "doc" (Mof.Model.find_exn m2 acct)
          = Some "line one\nline two"));
    Alcotest.test_case "entity-heavy and non-ASCII content round trips" `Quick
      (fun () ->
        (* ampersands, angle brackets, both quote kinds, accents, CJK, and
           an emoji across names, stereotypes, tags, and constraint bodies;
           asserts the import∘export fixpoint, not just model equality *)
        let m = Mof.Model.create ~name:"inter&national" in
        let root = Mof.Model.root m in
        let m, cls = Mof.Builder.add_class m ~owner:root ~name:"Caf\xC3\xA9" in
        let m = Mof.Builder.add_stereotype m cls "s\xC3\xA9curis\xC3\xA9" in
        let m = Mof.Builder.set_tag m cls "note" "a < b & \"c\" 'd'" in
        let m = Mof.Builder.set_tag m cls "emoji" "\xF0\x9F\x98\x80 ok" in
        let m, _ =
          Mof.Builder.add_attribute m ~cls ~name:"gr\xC3\xB6\xC3\x9Fe"
            ~typ:Mof.Kind.Dt_real ~initial:"'\xC3\xA9'"
        in
        let m, _ =
          Mof.Builder.add_class m ~owner:root ~name:"\xE5\xBA\x97\xE7\x95\xAA"
        in
        let m, _ =
          Mof.Builder.add_constraint m ~owner:root ~name:"body&refs"
            ~constrained:[ cls ] ~body:"name <> '\xC3\xA9t\xC3\xA9' & 1 < 2"
        in
        let s1 = Xmi.Export.to_string m in
        let m2 = Xmi.Import.from_string s1 in
        let s2 = Xmi.Export.to_string m2 in
        check cs "export fixpoint" s1 s2;
        check cb "model equal" true (Mof.Model.equal m m2));
    Alcotest.test_case "file round trip" `Quick (fun () ->
        let path = Filename.temp_file "mdweave" ".xmi" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let m = special_model () in
            Xmi.Export.write_file path m;
            check cb "equal" true (Mof.Model.equal m (Xmi.Import.read_file path))));
  ]

(* ---- properties --------------------------------------------------------- *)

let property_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck2.Test.make ~name:"XMI round trip on random models" ~count:50
        Gen.model_gen (fun m ->
          Mof.Model.equal m (Xmi.Import.from_string (Xmi.Export.to_string m)));
      QCheck2.Test.make ~name:"export is deterministic" ~count:30 Gen.model_gen
        (fun m -> String.equal (Xmi.Export.to_string m) (Xmi.Export.to_string m));
    ]

let () =
  Alcotest.run "xmi"
    [
      ("xml", xml_tests);
      ("xml-parser", parser_tests);
      ("xml-printer", printer_tests);
      ("dtype", dtype_tests);
      ("roundtrip", xmi_tests);
      ("properties", property_tests);
    ]
